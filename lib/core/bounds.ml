module Q = Numeric.Rational
open Q.Infix

let fold_workers p f init =
  let acc = ref init in
  for i = 0 to Platform.size p - 1 do
    acc := f !acc (Platform.get p i)
  done;
  !acc

let port_bound p =
  let best =
    fold_workers p
      (fun acc wk ->
        let cd = wk.Platform.c +/ wk.Platform.d in
        match acc with Some m when m <=/ cd -> acc | _ -> Some cd)
      None
  in
  match best with Some m -> Q.inv m | None -> assert false

let chain_time wk = wk.Platform.c +/ wk.Platform.w +/ wk.Platform.d
let chain_bound p = fold_workers p (fun acc wk -> acc +/ Q.inv (chain_time wk)) Q.zero
let upper p = Q.min (port_bound p) (chain_bound p)

let lower p =
  fold_workers p (fun acc wk -> Q.max acc (Q.inv (chain_time wk))) Q.zero

(* ------------------------------------------------------------------ *)
(* Per-ordering bounds for branch-and-bound pruning.

   Each LP row [Σ cost_j α_j <= 1] together with the chain caps
   [α_j <= 1/(c_j + w_j + d_j)] is a relaxation of the scheduling
   polytope, and maximizing [Σ α_j] over one row plus box constraints is
   a fractional knapsack: fill the cheapest coefficients first.  The
   minimum over rows is therefore a valid upper bound on the LP optimum —
   computed in exact rationals, with no simplex run. *)

(* max Σ α  s.t.  Σ costs.(j) α_j <= 1, 0 <= α_j <= caps.(j). *)
let row_knapsack costs caps =
  let n = Array.length costs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Q.compare costs.(a) costs.(b)) idx;
  let budget = ref Q.one in
  let total = ref Q.zero in
  Array.iter
    (fun j ->
      let cost = costs.(j) in
      if Q.sign cost = 0 then total := !total +/ caps.(j)
      else if Q.sign !budget > 0 then begin
        let take = Q.min caps.(j) (!budget // cost) in
        total := !total +/ take;
        budget := !budget -/ (take */ cost)
      end)
    idx;
  !total

let scenario_bound ?(model = Lp_model.One_port) (s : Scenario.t) =
  let q = Scenario.num_enrolled s in
  let wk k = Platform.get s.Scenario.platform s.Scenario.sigma1.(k) in
  let return_pos =
    Array.init q (fun k -> Scenario.return_position s s.Scenario.sigma1.(k))
  in
  let caps = Array.init q (fun k -> Q.inv (chain_time (wk k))) in
  let best = ref Q.zero in
  let first = ref true in
  let consider b =
    if !first || b </ !best then begin
      best := b;
      first := false
    end
  in
  for k = 0 to q - 1 do
    let costs =
      Array.init q (fun j ->
          let w = wk j in
          let acc = ref Q.zero in
          if j <= k then acc := !acc +/ w.Platform.c;
          if return_pos.(j) >= return_pos.(k) then acc := !acc +/ w.Platform.d;
          if j = k then acc := !acc +/ w.Platform.w;
          !acc)
    in
    consider (row_knapsack costs caps)
  done;
  (match model with
  | Lp_model.Two_port -> ()
  | Lp_model.One_port ->
    let costs = Array.init q (fun j -> (wk j).Platform.c +/ (wk j).Platform.d) in
    consider (row_knapsack costs caps));
  !best

(* Float mirror of [scenario_bound], used as a pre-screen: an enumerator
   first checks the (cheap) float bound against the incumbent with a
   safety margin, and only computes the exact rational bound — the one
   actually allowed to prune — when pruning looks possible.  Errors in
   either direction are harmless: a float bound that looks too high just
   skips the exact confirmation (the LP is solved as if never pruned), a
   float bound that looks too low wastes one exact bound computation. *)
let row_knapsack_float costs caps =
  let n = Array.length costs in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare costs.(a) costs.(b)) idx;
  let budget = ref 1.0 in
  let total = ref 0.0 in
  Array.iter
    (fun j ->
      let cost = costs.(j) in
      if cost <= 0.0 then total := !total +. caps.(j)
      else if !budget > 0.0 then begin
        let take = Float.min caps.(j) (!budget /. cost) in
        total := !total +. take;
        budget := !budget -. (take *. cost)
      end)
    idx;
  !total

let scenario_bound_float ?(model = Lp_model.One_port) (s : Scenario.t) =
  let q = Scenario.num_enrolled s in
  let wk k = Platform.get s.Scenario.platform s.Scenario.sigma1.(k) in
  let c k = Q.to_float (wk k).Platform.c in
  let w k = Q.to_float (wk k).Platform.w in
  let d k = Q.to_float (wk k).Platform.d in
  let return_pos =
    Array.init q (fun k -> Scenario.return_position s s.Scenario.sigma1.(k))
  in
  let caps = Array.init q (fun k -> 1.0 /. (c k +. w k +. d k)) in
  let best = ref infinity in
  for k = 0 to q - 1 do
    let costs =
      Array.init q (fun j ->
          let acc = ref 0.0 in
          if j <= k then acc := !acc +. c j;
          if return_pos.(j) >= return_pos.(k) then acc := !acc +. d j;
          if j = k then acc := !acc +. w j;
          !acc)
    in
    best := Float.min !best (row_knapsack_float costs caps)
  done;
  (match model with
  | Lp_model.Two_port -> ()
  | Lp_model.One_port ->
    let costs = Array.init q (fun j -> c j +. d j) in
    best := Float.min !best (row_knapsack_float costs caps));
  !best

let prefix_bound ?(model = Lp_model.One_port) ~discipline platform ~prefix
    ~remaining =
  let qp = Array.length prefix in
  let all = Array.append prefix remaining in
  let n = Array.length all in
  if n = 0 then invalid_arg "Bounds.prefix_bound: no workers";
  let wk j = Platform.get platform all.(j) in
  let caps = Array.init n (fun j -> Q.inv (chain_time (wk j))) in
  let best = ref Q.zero in
  let first = ref true in
  let consider b =
    if !first || b </ !best then begin
      best := b;
      first := false
    end
  in
  (* Prefix deadlines: exact under any completion (cf. the LP rows built
     by [Search.bound_problem]).  FIFO: position k waits for sends up to
     k and the returns of positions >= k, which include every unplaced
     worker.  LIFO: sends and returns both range over positions <= k.
     Free sigma2: only the worker's own return is guaranteed. *)
  for k = 0 to qp - 1 do
    let costs =
      Array.init n (fun j ->
          let w = wk j in
          let acc = ref Q.zero in
          (match discipline with
          | `Fifo ->
            if j <= k then acc := !acc +/ w.Platform.c;
            if j >= k || j >= qp then acc := !acc +/ w.Platform.d
          | `Lifo ->
            if j <= k then acc := !acc +/ (w.Platform.c +/ w.Platform.d)
          | `Free ->
            if j <= k then acc := !acc +/ w.Platform.c;
            if j = k then acc := !acc +/ w.Platform.d);
          if j = k then acc := !acc +/ w.Platform.w;
          !acc)
    in
    consider (row_knapsack costs caps)
  done;
  (* Unplaced workers, optimistic completion: the whole prefix's sends
     (plus, under LIFO, its returns) precede the worker's own chain. *)
  for k = qp to n - 1 do
    let costs =
      Array.init n (fun j ->
          if j < qp then
            let w = wk j in
            match discipline with
            | `Fifo | `Free -> w.Platform.c
            | `Lifo -> w.Platform.c +/ w.Platform.d
          else if j = k then chain_time (wk j)
          else Q.zero)
    in
    consider (row_knapsack costs caps)
  done;
  (match model with
  | Lp_model.Two_port -> ()
  | Lp_model.One_port ->
    let costs = Array.init n (fun j -> (wk j).Platform.c +/ (wk j).Platform.d) in
    consider (row_knapsack costs caps));
  !best
