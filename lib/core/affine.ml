module Q = Numeric.Rational
open Q.Infix

type worker = {
  base : Platform.worker;
  send_latency : Q.t;
  return_latency : Q.t;
}

type t = { workers : worker array }

let worker ?(send_latency = Q.zero) ?(return_latency = Q.zero) base =
  if Q.sign send_latency < 0 || Q.sign return_latency < 0 then
    invalid_arg "Affine.worker: negative latency";
  { base; send_latency; return_latency }

let make workers =
  if workers = [] then invalid_arg "Affine.make: no workers";
  { workers = Array.of_list workers }

let of_platform ?send_latency ?return_latency p =
  make
    (List.init (Platform.size p) (fun i ->
         worker ?send_latency ?return_latency (Platform.get p i)))

let size t = Array.length t.workers
let get t i = t.workers.(i)

let linear_platform t =
  Platform.make_exn (Array.to_list (Array.map (fun wk -> wk.base) t.workers))

type solved = {
  affine : t;
  sigma1 : int array;
  sigma2 : int array;
  model : Lp_model.model;
  rho : Q.t;
  alpha : Q.t array;
}

type outcome = Solved of solved | Too_slow

(* Same structure as the linear scenario LP (Lp_model.problem), with the
   per-message latencies accumulated as constants and moved to the
   right-hand sides. *)
let problem model t ~sigma1 ~sigma2 =
  (* Reuse Scenario's validation of the order pair. *)
  let scenario = Scenario.make_exn (linear_platform t) ~sigma1 ~sigma2 in
  let q = Array.length sigma1 in
  let wk k = t.workers.(sigma1.(k)) in
  let return_pos =
    Array.init q (fun k -> Scenario.return_position scenario sigma1.(k))
  in
  let nvars = 2 * q in
  let names =
    Array.init nvars (fun v ->
        if v < q then Printf.sprintf "alpha_%s" (wk v).base.Platform.name
        else Printf.sprintf "x_%s" (wk (v - q)).base.Platform.name)
  in
  let objective = Array.init nvars (fun v -> if v < q then Q.one else Q.zero) in
  let deadline k =
    let coeffs = Array.make nvars Q.zero in
    let latency = ref Q.zero in
    for j = 0 to q - 1 do
      let contrib = ref Q.zero in
      if j <= k then begin
        contrib := !contrib +/ (wk j).base.Platform.c;
        latency := !latency +/ (wk j).send_latency
      end;
      if return_pos.(j) >= return_pos.(k) then begin
        contrib := !contrib +/ (wk j).base.Platform.d;
        latency := !latency +/ (wk j).return_latency
      end;
      if j = k then contrib := !contrib +/ (wk j).base.Platform.w;
      coeffs.(j) <- !contrib
    done;
    coeffs.(q + k) <- Q.one;
    Simplex.Problem.constr coeffs Simplex.Problem.Le (Q.one -/ !latency)
  in
  let constraints = List.init q deadline in
  let constraints =
    match model with
    | Lp_model.Two_port -> constraints
    | Lp_model.One_port ->
      let coeffs = Array.make nvars Q.zero in
      let latency = ref Q.zero in
      for j = 0 to q - 1 do
        coeffs.(j) <- (wk j).base.Platform.c +/ (wk j).base.Platform.d;
        latency := !latency +/ (wk j).send_latency +/ (wk j).return_latency
      done;
      constraints
      @ [ Simplex.Problem.constr coeffs Simplex.Problem.Le (Q.one -/ !latency) ]
  in
  Simplex.Problem.make ~names Simplex.Problem.Maximize objective constraints

let solve ?(model = Lp_model.One_port) t ~sigma1 ~sigma2 =
  let p = problem model t ~sigma1 ~sigma2 in
  match Simplex.Solver.solve p with
  | Simplex.Solver.Infeasible -> Too_slow
  | Simplex.Solver.Unbounded -> raise (Errors.Error Errors.Unbounded)
  | Simplex.Solver.Optimal sol ->
    (match Simplex.Certify.check p sol with
    | Ok () -> ()
    | Error msgs ->
      raise
        (Errors.Error
           (Errors.Invalid_scenario
              ("Affine.solve: certification failed: " ^ String.concat "; " msgs))));
    let alpha = Array.make (size t) Q.zero in
    Array.iteri (fun k i -> alpha.(i) <- sol.Simplex.Solver.point.(k)) sigma1;
    Solved
      { affine = t; sigma1; sigma2; model; rho = sol.Simplex.Solver.value; alpha }

(* Non-empty subsets of 0..n-1. *)
let subsets n =
  let rec go i =
    if i = n then [ [] ]
    else begin
      let rest = go (i + 1) in
      List.map (fun s -> i :: s) rest @ rest
    end
  in
  List.filter (fun s -> s <> []) (go 0)

let orderings_of subset =
  let arr = Array.of_list subset in
  List.map
    (fun perm -> Array.map (fun i -> arr.(i)) perm)
    (Brute.permutations (Array.length arr))

let best_outcome a b =
  match (a, b) with
  | Too_slow, x | x, Too_slow -> x
  | Solved sa, Solved sb -> if sb.rho >/ sa.rho then b else a

let best_over_scenarios ?model t scenarios =
  List.fold_left
    (fun acc (sigma1, sigma2) -> best_outcome acc (solve ?model t ~sigma1 ~sigma2))
    Too_slow scenarios

let best_fifo ?model t =
  best_over_scenarios ?model t
    (List.concat_map
       (fun subset ->
         List.map (fun ord -> (ord, Array.copy ord)) (orderings_of subset))
       (subsets (size t)))

let best_general ?model t =
  best_over_scenarios ?model t
    (List.concat_map
       (fun subset ->
         let orders = orderings_of subset in
         List.concat_map
           (fun sigma1 -> List.map (fun sigma2 -> (sigma1, sigma2)) orders)
           orders)
       (subsets (size t)))
