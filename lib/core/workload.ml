module Q = Numeric.Rational
open Q.Infix

type load = { name : string; size : Q.t; release : Q.t; z : Q.t option }
type t = { loads : load array }

let load ?(name = "") ?(release = Q.zero) ?z ~size () =
  if Q.sign size <= 0 then invalid_arg "Workload.load: size must be positive";
  if Q.sign release < 0 then
    invalid_arg "Workload.load: release must be non-negative";
  (match z with
  | Some z when Q.sign z < 0 ->
    invalid_arg "Workload.load: return ratio z must be non-negative"
  | _ -> ());
  { name; size; release; z }

let make = function
  | [] -> Errors.invalid "a workload needs at least one load"
  | loads ->
    let loads =
      List.mapi
        (fun i l ->
          if l.name = "" then { l with name = Printf.sprintf "L%d" (i + 1) }
          else l)
        loads
    in
    Ok { loads = Array.of_list loads }

let make_exn loads = Errors.get_exn (make loads)
let size w = Array.length w.loads
let get w k = w.loads.(k)
let total_size w = Q.sum_array (Array.map (fun l -> l.size) w.loads)

let max_release w =
  Array.fold_left (fun acc l -> Q.max acc l.release) Q.zero w.loads

let repeat h w =
  if h < 1 then invalid_arg "Workload.repeat: need at least one copy";
  let k = size w in
  {
    loads =
      Array.init (h * k) (fun i ->
          let l = w.loads.(i mod k) in
          { l with name = Printf.sprintf "%s#%d" l.name ((i / k) + 1) });
  }

let return_cost w k (worker : Platform.worker) =
  match w.loads.(k).z with
  | Some z -> z */ worker.Platform.c
  | None -> worker.Platform.d

let induced_platform w k p =
  Platform.make_exn
    (List.init (Platform.size p) (fun i ->
         let wk = Platform.get p i in
         Platform.worker ~name:wk.Platform.name ~c:wk.Platform.c
           ~w:wk.Platform.w ~d:(return_cost w k wk) ()))

(* ------------------------------------------------------------------ *)
(* Text form                                                           *)

let to_spec w =
  String.concat ","
    (List.map
       (fun l ->
         let base =
           Printf.sprintf "%s:%s" (Q.to_string l.size) (Q.to_string l.release)
         in
         match l.z with
         | Some z -> base ^ ":" ^ Q.to_string z
         | None -> base)
       (Array.to_list w.loads))

let key w = to_spec w

let of_spec ?file ~line ~col s =
  let ( let* ) = Result.bind in
  let rational ~off txt =
    match Q.of_string txt with
    | q -> Ok q
    | exception _ ->
      Errors.parse_error ?file ~line ~col:(col + off) "not a rational: %S" txt
  in
  (* split keeping each part's offset in [s], surrounding blanks trimmed
     (offsets adjusted); a part left empty by the trim is a stray
     separator, reported at its exact position instead of as a generic
     "not a rational" / shape error *)
  let split_offsets sep str =
    let parts = String.split_on_char sep str in
    let _, with_off =
      List.fold_left
        (fun (off, acc) part ->
          (off + String.length part + 1, (off, part) :: acc))
        (0, []) parts
    in
    List.rev_map
      (fun (off, part) ->
        let n = String.length part in
        let i = ref 0 in
        while !i < n && (part.[!i] = ' ' || part.[!i] = '\t') do
          incr i
        done;
        let j = ref (n - 1) in
        while !j >= !i && (part.[!j] = ' ' || part.[!j] = '\t') do
          decr j
        done;
        (off + !i, String.sub part !i (!j - !i + 1)))
      with_off
  in
  let build ~off i ~size ~release ~z =
    match load ~name:(Printf.sprintf "L%d" (i + 1)) ~release ?z ~size () with
    | l -> Ok l
    | exception Invalid_argument msg ->
      Errors.parse_error ?file ~line ~col:(col + off) "%s" msg
  in
  let parse_load i (off, part) =
    match split_offsets ':' part with
    | [ (os, sz); (orl, rl) ] when sz <> "" && rl <> "" ->
      let* size = rational ~off:(off + os) sz in
      let* release = rational ~off:(off + orl) rl in
      build ~off i ~size ~release ~z:None
    | [ (os, sz); (orl, rl); (oz, zs) ] when sz <> "" && rl <> "" && zs <> ""
      ->
      let* size = rational ~off:(off + os) sz in
      let* release = rational ~off:(off + orl) rl in
      let* z = rational ~off:(off + oz) zs in
      build ~off i ~size ~release ~z:(Some z)
    | fields ->
      if part = "" then
        Errors.parse_error ?file ~line ~col:(col + off)
          "empty load spec (stray ',' separator?)"
      else (
        match List.find_opt (fun (_, f) -> f = "") fields with
        | Some (o, _) ->
          Errors.parse_error ?file ~line ~col:(col + off + o)
            "empty field in load spec (stray ':' separator?)"
        | None ->
          Errors.parse_error ?file ~line ~col:(col + off)
            "expected size:release or size:release:z, got %S" part)
  in
  let rec collect i acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      let* l = parse_load i part in
      collect (i + 1) (l :: acc) rest
  in
  if String.trim s = "" then
    Errors.parse_error ?file ~line ~col "empty workload spec"
  else
    let* loads = collect 0 [] (split_offsets ',' s) in
    match make loads with
    | Ok w -> Ok w
    | Error (Errors.Invalid_scenario msg) ->
      Errors.parse_error ?file ~line ~col "%s" msg
    | Error e -> Error e

let pp fmt w =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun l ->
      Format.fprintf fmt "%-6s size=%s release=%s%s@,%!" l.name
        (Q.to_string l.size) (Q.to_string l.release)
        (match l.z with Some z -> " z=" ^ Q.to_string z | None -> ""))
    w.loads;
  Format.fprintf fmt "@]"
