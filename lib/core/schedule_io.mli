(** Text serialization of explicit schedules.

    The format is self-contained — it embeds the platform — so a dumped
    schedule can be re-validated later ([dls check --schedule FILE])
    without any side channel.  All quantities are exact rationals; a
    round trip is lossless.

    {v
    # dls schedule v1
    horizon 1
    worker P1 1 1 1/2
    worker P2 1 2 1/2
    entry 0 2/5 0 2/5 2/5 4/5 4/5 1
    entry 1 1/5 2/5 3/5 3/5 1/5 ...
    v}

    [worker] lines describe the platform in index order ([name c w d]);
    [entry] lines carry
    [index alpha send.start send.finish compute.start compute.finish
    return.start return.finish] in schedule order.  Blank lines and [#]
    comments are ignored. *)

(** [to_string sched] serializes the schedule. *)
val to_string : Schedule.t -> string

(** [of_string s] parses a schedule back.  Malformed input — unknown
    directive, bad arity, out-of-range worker index, non-rational field
    (including ["1/0"]), missing horizon ... — is reported as a typed
    {!Errors.Parse_error} (1-based line/column) or
    {!Errors.Invalid_scenario}; no input makes this raise. *)
val of_string : string -> (Schedule.t, Errors.t) result

(** [write path sched] writes the schedule.
    @raise Errors.Error ([Io_error]) when the file cannot be written. *)
val write : string -> Schedule.t -> unit

(** [read path] parses the file; [Error (Io_error _)] when unreadable,
    parse errors carry the file name. *)
val read : string -> (Schedule.t, Errors.t) result
