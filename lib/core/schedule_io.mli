(** Text serialization of explicit schedules.

    The format is self-contained — it embeds the platform — so a dumped
    schedule can be re-validated later ([dls check --schedule FILE])
    without any side channel.  All quantities are exact rationals; a
    round trip is lossless.

    {v
    # dls schedule v1
    horizon 1
    worker P1 1 1 1/2
    worker P2 1 2 1/2
    entry 0 2/5 0 2/5 2/5 4/5 4/5 1
    entry 1 1/5 2/5 3/5 3/5 1/5 ...
    v}

    [worker] lines describe the platform in index order ([name c w d]);
    [entry] lines carry
    [index alpha send.start send.finish compute.start compute.finish
    return.start return.finish] in schedule order.  Blank lines and [#]
    comments are ignored. *)

(** [to_string sched] serializes the schedule. *)
val to_string : Schedule.t -> string

(** [of_string s] parses a schedule back; [Error message] on malformed
    input (unknown directive, bad arity, out-of-range worker index,
    non-rational field, missing horizon ...). *)
val of_string : string -> (Schedule.t, string) result

(** [write path sched] / [read path]: file variants. *)
val write : string -> Schedule.t -> unit

val read : string -> (Schedule.t, string) result
