(* The optimal LIFO sending order is non-decreasing [c] for EVERY
   uniform return ratio, unlike FIFO: mirroring a LIFO schedule
   (time flip, [c <-> d]) maps [sigma1 = reverse sigma2] back to the
   same [sigma1], so the [z > 1] mirror argument does not reverse the
   order.  (Flipping it, as {!Fifo.order} must, is a strict loss —
   caught by the differential fuzzer in [Check.Fuzz].) *)
let order platform =
  Platform.sorted_indices_by platform (fun wk -> wk.Platform.c)

let solve_order ?model platform ord =
  Lp_model.solve_exn ?model (Scenario.lifo_exn platform ord)

let optimal ?model platform = solve_order ?model platform (order platform)
