(** Communication scenarios: which workers participate and in which
    orders the master talks to them.

    Following Section 2.2 of the paper, a schedule is characterized by a
    permutation [sigma1] (order of the initial messages, master to
    workers), a permutation [sigma2] (order of the result messages,
    workers to master), plus the per-worker loads and idle times that the
    linear program determines.  A scenario fixes the combinatorial part:
    the enrolled set and the two orders.

    Constructors validate their input and return a [result] carrying
    {!Errors.t}; the [_exn] variants raise {!Errors.Error} instead for
    callers that know their orders are well-formed. *)

type t = private {
  platform : Platform.t;
  sigma1 : int array;  (** enrolled worker indices, in sending order *)
  sigma2 : int array;  (** the same indices, in result-return order *)
}

(** [make platform ~sigma1 ~sigma2] validates that the two orders range
    over the same duplicate-free non-empty set of valid worker
    indices. *)
val make : Platform.t -> sigma1:int array -> sigma2:int array -> (t, Errors.t) result

(** [fifo platform order] is the FIFO scenario [sigma2 = sigma1 = order]. *)
val fifo : Platform.t -> int array -> (t, Errors.t) result

(** [lifo platform order] is the LIFO scenario [sigma2 = reverse order]. *)
val lifo : Platform.t -> int array -> (t, Errors.t) result

(** [make_exn], [fifo_exn], [lifo_exn]: as above.
    @raise Errors.Error on invalid orders. *)
val make_exn : Platform.t -> sigma1:int array -> sigma2:int array -> t

val fifo_exn : Platform.t -> int array -> t
val lifo_exn : Platform.t -> int array -> t

(** [all_workers_fifo platform] enrolls every worker in index order,
    FIFO.  Total: every platform has at least one worker. *)
val all_workers_fifo : Platform.t -> t

val num_enrolled : t -> int
val is_fifo : t -> bool
val is_lifo : t -> bool

(** [send_position s i] is the position of worker [i] in [sigma1].
    @raise Not_found if [i] is not enrolled. *)
val send_position : t -> int -> int

(** [return_position s i] is the position of worker [i] in [sigma2]. *)
val return_position : t -> int -> int

val pp : Format.formatter -> t -> unit
