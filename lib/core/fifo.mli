(** Optimal FIFO schedules on star platforms (Theorem 1 / Proposition 1).

    Theorem 1: when [d_i = z c_i] with [z < 1], there is an optimal
    one-port FIFO schedule serving workers by {e non-decreasing} [c_i],
    in which only the last enrolled worker may idle.  For [z > 1] the
    mirror argument flips the order to non-increasing [c_i]; for [z = 1]
    the order is irrelevant.  Resource selection is automatic: the LP
    assigns zero load to workers not worth enrolling.

    Proposition 1's polynomial algorithm is exactly {!optimal}: sort,
    then solve one LP enrolling everybody. *)

module Q = Numeric.Rational

(** [order platform] is the sending order prescribed by Theorem 1:
    workers sorted by non-decreasing [c] when the platform's uniform
    return ratio satisfies [z <= 1], non-increasing when [z > 1].  On
    platforms without a uniform ratio (outside the theorem's hypotheses)
    the [z <= 1] order is used as a heuristic. *)
val order : Platform.t -> int array

(** [optimal ?model platform] is the optimal FIFO schedule
    (default: one-port). *)
val optimal : ?model:Lp_model.model -> Platform.t -> Lp_model.solved

(** The result of the mirror construction: the LP solution on the
    swapped [(d, w, c)] platform, and the mirrored schedule, which lives
    on the {e original} platform.  [solved.rho] is the throughput of
    both. *)
type mirrored = { solved : Lp_model.solved; schedule : Schedule.t }

(** [optimal_via_mirror platform] solves a [z > 1] instance by the
    explicit mirror construction of the paper (swap [c] and [d], solve,
    flip time): used to cross-check that {!optimal} and the mirror
    argument agree.  Errors with [Invalid_scenario] when some
    [d_i = 0]. *)
val optimal_via_mirror : Platform.t -> (mirrored, Errors.t) result

(** [optimal_via_mirror_exn platform] is {!optimal_via_mirror}.
    @raise Errors.Error when some [d_i = 0]. *)
val optimal_via_mirror_exn : Platform.t -> mirrored

(** [solve_order ?model platform order] is the best FIFO schedule for a
    {e fixed} sending order (all listed workers offered to the LP).
    @raise Errors.Error when [order] is not a valid enrollment. *)
val solve_order : ?model:Lp_model.model -> Platform.t -> int array -> Lp_model.solved
