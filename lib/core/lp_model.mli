(** The scheduling linear program of Section 2.3 of the paper,
    generalized to an arbitrary permutation pair (the paper notes the
    extension is immediate; FIFO is the special case [sigma2 = sigma1]).

    For a scenario enrolling workers [P_{σ1(1)}, ..., P_{σ1(q)}], the
    maximal number of load units processable within [T = 1] is

    {v
      maximize   rho = Σ α_i
      subject to, for every enrolled worker i:
        Σ_{j sent no later than i} α_j c_j            (wait for + receive data)
        + α_i w_i + x_i                               (compute, then idle)
        + Σ_{j returned no earlier than i} α_j d_j    (send results, wait)
        <= 1
      and (one-port)  Σ α_i c_i + Σ α_i d_i <= 1
      with α_i >= 0, x_i >= 0.
    v}

    Under the two-port model of the companion paper (master may send and
    receive simultaneously) the one-port constraint is dropped; both
    variants are provided, the two-port one serving as baseline and as
    the cross-check for Theorem 2 (whose bound [ρ̃] is the two-port bus
    optimum). *)

module Q = Numeric.Rational

type model = One_port | Two_port

type solved = private {
  scenario : Scenario.t;
  model : model;
  rho : Q.t;  (** optimal throughput (load processed within T = 1) *)
  alpha : Q.t array;  (** per-worker load, indexed like the platform *)
  idle : Q.t array;
      (** per-worker idle time, same indexing: the gap between the
          worker's compute finish and its return start in the canonical
          packed timeline (sends packed from time 0, returns packed
          against the horizon — {!Schedule.of_solved}'s layout).  This is
          a function of [alpha] alone, not the simplex point's own idle
          variable, whose split against the row slack depends on the
          pivot path. *)
  pivots : int;  (** simplex pivots, for diagnostics *)
  basis : int array;
      (** terminal simplex basis — diagnostics, and the warm-start seed
          threaded through enumeration (see {!solve_fast}) *)
}

(** [problem model scenario] builds the LP. Variables are laid out as
    [α] in [sigma1] order followed by [x] in [sigma1] order. *)
val problem : model -> Scenario.t -> Simplex.Problem.t

(** [solve ?model scenario] solves the LP exactly (default [One_port]).
    The solution is validated with {!Simplex.Certify} before being
    returned.  [Error Unbounded]/[Error Infeasible] are impossible for a
    well-formed platform but reported faithfully when they occur. *)
val solve : ?model:model -> Scenario.t -> (solved, Errors.t) result
[@@ocaml.deprecated "use Solve.solve ~mode:`Exact"]

(** [solve_exn ?model scenario] is {!solve}.
    @raise Errors.Error on a degenerate LP. *)
val solve_exn : ?model:model -> Scenario.t -> solved
[@@ocaml.deprecated "use Solve.solve_exn ~mode:`Exact"]

(** [solve_fast ?model ?warm ?max_float_pivots scenario] is the certified
    fast pipeline, {e bit-identical} to {!solve} by construction:

    + if [warm] (the optimal basis of a neighbouring scenario) is given,
      it is factorized exactly and re-optimized with Bland's rule;
    + else the float simplex runs first and its terminal basis is lifted
      into a single exact factorization;
    + a lifted/warmed answer is {e accepted} only when the exact re-solve
      shows strictly negative reduced costs on every non-basic column —
      that proves the optimum unique, hence equal to the cold solve's
      point — and it is then certified with {!Simplex.Certify} exactly
      like {!solve}'s answer;
    + every other case (rejected basis, float stall after
      [max_float_pivots], alternate optima) falls back to the full exact
      {!solve}.

    Correctness therefore never depends on float tolerances; the floats
    only pick which exact computation runs.  The [pivots] field of the
    result reflects the work of whichever path produced it.  Counter
    movements are visible in {!pipeline_stats}. *)
val solve_fast :
  ?model:model ->
  ?warm:int array ->
  ?max_float_pivots:int ->
  Scenario.t ->
  (solved, Errors.t) result
[@@ocaml.deprecated "use Solve.solve ~mode:`Fast"]

(** [solve_fast_exn] is {!solve_fast}.
    @raise Errors.Error on a degenerate LP. *)
val solve_fast_exn :
  ?model:model -> ?warm:int array -> ?max_float_pivots:int -> Scenario.t -> solved
[@@ocaml.deprecated "use Solve.solve_exn ~mode:`Fast"]

(** [solve_cached ?model ?fast ?warm scenario] is {!solve_fast_exn}
    (default) or {!solve_exn} (when [fast] is [false]) memoized through a
    process-wide, size-bounded LRU cache keyed by {!scenario_key}.
    Because both pipelines return bit-identical records, the key does not
    encode the pipeline and a hit may serve either caller.  [warm] is a
    performance hint only.  Safe to call from several domains
    concurrently. *)
val solve_cached :
  ?model:model -> ?fast:bool -> ?warm:int array -> Scenario.t -> solved
[@@ocaml.deprecated "use Solve.solve ~mode:`Cached"]

(** [scenario_key model scenario] is the canonical cache fingerprint:
    model tag, every worker's [name:c:w:d] (rationals in lowest terms),
    and the two permutations.  Scenarios are structurally equal iff
    their keys are equal. *)
val scenario_key : model -> Scenario.t -> string

(** [scenario_key_distance a b] is the distance between two canonical
    fingerprints for the nearest-neighbor warm-repair probe: the number
    of differing worker [name:c:w:d] fields, when the two keys agree on
    the model, the worker count and both permutations — [None]
    otherwise (incomparable: the LPs differ in shape or row semantics,
    so a cached basis cannot be installed).  [Some 0] iff [a = b].
    Purely syntactic; never inspects the scenarios themselves. *)
val scenario_key_distance : string -> string -> int option

(** [solve_from_neighbor model scenario near] attempts the incremental
    re-solve primitive: treat [near] — a solved neighbouring scenario,
    typically differing from [scenario] in a few worker fields (a
    {!Delta} application) — as a warm start, and return a {e certified}
    solution of [scenario] built from it, or [None].

    Two rungs, cheapest first: (1) [near.basis] is certified directly
    against [scenario]'s LP ({!Simplex.Solver.certify_basis}; for small
    nudges the optimal basis rarely moves, and this is one restricted
    exact factorization, zero pivots); (2) a bounded float dual-simplex
    {e repair} ({!Simplex.Float_solver.repair}) pivots the stale basis
    back to optimality, and the terminal basis must pass the same exact
    certification.  A [Some] answer is therefore bit-identical to
    {!solve}'s in [rho]/[alpha]/[idle]; [None] means "no certified
    shortcut" — fall back to a full pipeline — never "no optimum".
    Counter movements land in {!resolve_stats}. *)
val solve_from_neighbor : model -> Scenario.t -> solved -> solved option

(** [cache_stats ()] is a snapshot of the solve cache's hit/miss/eviction
    counters. *)
val cache_stats : unit -> Parallel.Lru.stats

(** Process-wide counters of the certified fast pipeline; all increments
    are atomic, so the numbers are meaningful under [?jobs] parallelism. *)
type pipeline_stats = {
  float_wins : int;
      (** solves certified from the float solver's lifted basis *)
  warm_wins : int;  (** solves certified from a caller-supplied warm basis *)
  exact_fallbacks : int;  (** solves that needed the full exact simplex *)
  pruned : int;  (** enumeration nodes skipped on {!Bounds} evidence *)
  float_pivots : int;  (** cumulative float-simplex pivots *)
  exact_pivots : int;  (** cumulative exact-simplex pivots (all paths) *)
}

(** [pipeline_stats ()] is a snapshot of the fast-pipeline counters. *)
val pipeline_stats : unit -> pipeline_stats

(** [reset_pipeline_stats ()] zeroes them (benchmark bookkeeping). *)
val reset_pipeline_stats : unit -> unit

(** [note_pruned n] records [n] enumeration nodes skipped via a cheap
    bound — called by [Brute]/[Search], surfaced in {!pipeline_stats}. *)
val note_pruned : int -> unit

val pp_pipeline_stats : Format.formatter -> pipeline_stats -> unit

(** Process-wide counters of the incremental re-solve (warm-repair)
    path taken by {!solve_cached} misses; atomic like
    {!pipeline_stats}. *)
type resolve_stats = {
  probes : int;
      (** warm-repair attempts: {!solve_from_neighbor} calls, whether
          from a cache miss that found a comparable neighbor or direct *)
  repair_wins : int;
      (** probes whose repaired (or directly re-certified) basis was
          certified — the full solve was skipped *)
  repair_fallbacks : int;
      (** probes that did not certify and fell back to a full solve *)
  repair_pivots : int;
      (** cumulative dual/primal repair pivots across wins (0-pivot wins
          are direct re-certifications of the neighbour's basis) *)
}

(** [resolve_stats ()] is a snapshot of the warm-repair counters. *)
val resolve_stats : unit -> resolve_stats

(** [reset_resolve_stats ()] zeroes them (benchmark bookkeeping). *)
val reset_resolve_stats : unit -> unit

val pp_resolve_stats : Format.formatter -> resolve_stats -> unit

(** [reset_cache ?capacity ()] empties the solve cache (default capacity
    4096 entries; [capacity <= 0] disables caching). *)
val reset_cache : ?capacity:int -> unit -> unit

(** [estimate_rho ?model scenario] solves the same LP in floating-point
    arithmetic: ~10x faster, accurate to ~1e-9 relative on the library's
    scheduling programs, but carrying no exactness guarantee — use for
    large sweeps and dashboards, never to build a schedule.  Returns
    [None] when the float solver stalls on a degenerate instance. *)
val estimate_rho : ?model:model -> Scenario.t -> float option

(** [enrolled_workers s] lists indices with strictly positive load. *)
val enrolled_workers : solved -> int list

(** One row of {!constraint_report}. *)
type constraint_status = {
  label : string;  (** e.g. ["deadline(P2)"] or ["one-port"] *)
  slack : Q.t;  (** non-negative; zero means the constraint binds *)
  binding : bool;
}

(** [constraint_report s] evaluates every LP constraint at the solution:
    per-worker deadline slacks (with the idle variable folded in, i.e.
    the worker's true schedule gap) and the one-port port-capacity
    slack.  Lemma 1's structure shows up directly: when every worker is
    enrolled, at most one row is non-binding. *)
val constraint_report : solved -> constraint_status list

(** [time_for_load s ~load] is the optimal makespan for processing
    [load] units under this scenario: by linearity, [load / rho]. *)
val time_for_load : solved -> load:Q.t -> Q.t

val pp : Format.formatter -> solved -> unit
