(** Exact sensitivity analysis of the optimal throughput.

    How much does a schedule's throughput move when one platform
    parameter drifts?  Because the solver is exact, we can answer with
    exact finite differences — no numerical noise, arbitrary step sizes.
    The sign structure is itself a (machine-checked) theorem: slowing
    any resource can only reduce the optimal FIFO throughput, and
    perturbing a worker that optimal resource selection already dropped
    changes nothing. *)

module Q = Numeric.Rational

type parameter =
  | Comm of int  (** [c] (and proportionally [d]) of one worker *)
  | Comp of int  (** [w] of one worker *)

(** [to_delta param ~factor] is the parameter as a {!Delta.change}: a
    sensitivity perturbation is the single-change special case of the
    general delta edit language. *)
val to_delta : parameter -> factor:Q.t -> Delta.change

(** [perturb platform param ~factor] scales the parameter by
    [factor > 0]; [Comm] scales both [c] and [d], preserving the
    platform's return ratio [z] (the paper's hypothesis).  Equivalent to
    {!Delta.apply} of [[to_delta param ~factor]].
    @raise Invalid_argument on a bad index or factor. *)
val perturb : Platform.t -> parameter -> factor:Q.t -> Platform.t

(** [throughput_delta ?model platform param ~factor] is
    [rho(perturbed) - rho(original)] for the optimal FIFO schedule,
    exactly. *)
val throughput_delta :
  ?model:Lp_model.model -> Platform.t -> parameter -> factor:Q.t -> Q.t

(** [table ?model platform ~factor] lists, for every worker and both
    parameters, the exact relative throughput change
    [(rho' - rho) / rho] when that parameter is scaled by [factor]. *)
val table :
  ?model:Lp_model.model ->
  Platform.t ->
  factor:Q.t ->
  (parameter * Q.t) list

val parameter_to_string : Platform.t -> parameter -> string
