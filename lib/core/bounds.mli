(** Cheap analytic bounds on the optimal one-port throughput — no LP
    required.

    Useful as sanity envelopes around solver output and as first-cut
    estimates on very large platforms:

    - {e port bound}: every processed unit crosses the master's port
      twice (data + results), so [rho <= 1 / min_i (c_i + d_i)];
    - {e chain bound}: worker [i]'s own chain occupies
      [alpha_i (c_i + w_i + d_i) <= 1], so
      [rho <= Σ 1/(c_i + w_i + d_i)];
    - {e single-worker lower bound}: serving only the best worker
      achieves [max_i 1/(c_i + w_i + d_i)].

    The test suite checks [lower <= rho_opt <= upper] exactly on random
    platforms. *)

module Q = Numeric.Rational

(** [port_bound p] is [1 / min (c_i + d_i)]. *)
val port_bound : Platform.t -> Q.t

(** [chain_bound p] is [Σ 1/(c_i + w_i + d_i)]. *)
val chain_bound : Platform.t -> Q.t

(** [upper p] is the tighter of the two upper bounds. *)
val upper : Platform.t -> Q.t

(** [lower p] is the best single-worker throughput. *)
val lower : Platform.t -> Q.t

(** [scenario_bound ?model s] is a cheap exact upper bound on the LP
    optimum of scenario [s] — no simplex run.  Every LP row together
    with the chain caps [α_i <= 1/(c_i + w_i + d_i)] is a fractional
    knapsack; the bound is the minimum over rows (plus the one-port row
    unless [model] is [Two_port]).  Used by [Brute] to skip LPs that
    cannot beat the incumbent. *)
val scenario_bound : ?model:Lp_model.model -> Scenario.t -> Q.t

(** [scenario_bound_float ?model s] is the floating-point mirror of
    {!scenario_bound}, for use as a pre-screen: compute the exact bound
    (the only one allowed to make a pruning decision) only when this one
    says pruning is plausible.  Not a certified bound — callers must
    confirm with {!scenario_bound} before skipping anything. *)
val scenario_bound_float : ?model:Lp_model.model -> Scenario.t -> float

(** [prefix_bound ?model ~discipline platform ~prefix ~remaining] bounds
    the throughput of {e every} completion of the ordered send [prefix]
    by the [remaining] workers: exact rows for the prefix, optimistic
    rows for the unplaced, same knapsack relaxation as
    {!scenario_bound}.  [`Fifo]/[`Lifo] fix [sigma2] to the
    corresponding permutation of [sigma1]; [`Free] assumes nothing about
    the return order (only each worker's own return is counted).  The
    result always dominates the LP relaxation bound of
    [Search.bound_problem] on the same node, so using it as a pre-filter
    never changes which nodes get pruned. *)
val prefix_bound :
  ?model:Lp_model.model ->
  discipline:[ `Fifo | `Lifo | `Free ] ->
  Platform.t ->
  prefix:int array ->
  remaining:int array ->
  Q.t
