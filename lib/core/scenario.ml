type t = { platform : Platform.t; sigma1 : int array; sigma2 : int array }

let ( let* ) = Result.bind

let validate_order platform order =
  let p = Platform.size platform in
  let seen = Array.make p false in
  let rec scan k =
    if k >= Array.length order then Ok ()
    else
      let i = order.(k) in
      if i < 0 || i >= p then Errors.invalid "worker index %d out of range" i
      else if seen.(i) then Errors.invalid "worker %d appears twice" i
      else begin
        seen.(i) <- true;
        scan (k + 1)
      end
  in
  scan 0

let make platform ~sigma1 ~sigma2 =
  if Array.length sigma1 = 0 then Errors.invalid "no enrolled workers"
  else
    let* () = validate_order platform sigma1 in
    let* () = validate_order platform sigma2 in
    let sorted a =
      let a = Array.copy a in
      Array.sort Stdlib.compare a;
      a
    in
    if sorted sigma1 <> sorted sigma2 then
      Errors.invalid "sigma1 and sigma2 enroll different workers"
    else Ok { platform; sigma1; sigma2 }

let reverse a = Array.init (Array.length a) (fun i -> a.(Array.length a - 1 - i))
let fifo platform order = make platform ~sigma1:order ~sigma2:(Array.copy order)
let lifo platform order = make platform ~sigma1:order ~sigma2:(reverse order)
let make_exn platform ~sigma1 ~sigma2 = Errors.get_exn (make platform ~sigma1 ~sigma2)
let fifo_exn platform order = Errors.get_exn (fifo platform order)
let lifo_exn platform order = Errors.get_exn (lifo platform order)

let all_workers_fifo platform =
  (* Total: a platform always has >= 1 worker and the identity order is
     trivially valid. *)
  fifo_exn platform (Array.init (Platform.size platform) Fun.id)

let num_enrolled s = Array.length s.sigma1
let is_fifo s = s.sigma1 = s.sigma2
let is_lifo s = s.sigma1 = reverse s.sigma2

let position order i =
  let rec scan k =
    if k >= Array.length order then raise Not_found
    else if order.(k) = i then k
    else scan (k + 1)
  in
  scan 0

let send_position s i = position s.sigma1 i
let return_position s i = position s.sigma2 i

let pp fmt s =
  let names order =
    String.concat " "
      (Array.to_list (Array.map (fun i -> (Platform.get s.platform i).Platform.name) order))
  in
  Format.fprintf fmt "sends: %s; returns: %s" (names s.sigma1) (names s.sigma2)
