(** Lock-free serving counters and latency histogram.

    Every counter is an {!Atomic}, so connection threads, the
    dispatcher, and pool workers may record events concurrently without
    sharing a lock with the serving path; {!snapshot} is a read-only
    aggregation that never blocks a writer.  Latencies go into
    power-of-two microsecond buckets — quantiles are read as the upper
    bound of the covering bucket, which over-reports by at most 2x and
    costs one atomic increment per observation. *)

type t

val create : unit -> t

val incr_accepted : t -> unit
val incr_served : t -> unit
val incr_rejected : t -> unit
val incr_timed_out : t -> unit
val incr_failed : t -> unit
val incr_malformed : t -> unit

(** [note_batch m ~size ~unique] records one dispatcher round over
    [size] admitted requests collapsed onto [unique] evaluations. *)
val note_batch : t -> size:int -> unique:int -> unit

val incr_inflight : t -> unit
val decr_inflight : t -> unit

(** [incr_steals m] records one dispatch round whose first job was
    stolen from another dispatcher's shard. *)
val incr_steals : t -> unit

(** Resilience counters (PR 9).  Server side: [shed] requests turned
    away by deadline-aware admission, [hangups] connections lost
    mid-request or before their response was written, [warm_hits]
    requests answered from the journal-backed response cache, and the
    journal append/replay totals.  Client side ({!Resilient} keeps its
    own [t]): [retries] re-sent attempts and [breaker_opens] circuit
    trips — both are rendered into loadgen/bench reports rather than
    the server's wire stats line. *)
val incr_shed : t -> unit

val incr_hangups : t -> unit
val incr_warm_hits : t -> unit
val incr_journal_appended : t -> unit
val add_journal_replayed : t -> int -> unit

(** Scale-out counters (PR 10): tier-2 store probes at admission
    ([store_hits]/[store_misses]), tier-1 response-cache evictions
    demoted to store-only residency ([store_demoted]), and journal
    compactions triggered by the [--journal-max-bytes] bound. *)
val incr_store_hits : t -> unit

val incr_store_misses : t -> unit
val incr_store_demoted : t -> unit
val incr_compactions : t -> unit
val incr_retries : t -> unit
val incr_breaker_opens : t -> unit

(** [set_brownout m active] flips the brownout gauge; only the
    off→on edge increments the [brownouts] counter, so it counts
    activations, not rounds spent browned out. *)
val set_brownout : t -> bool -> unit

val brownout_active : t -> bool

(** [observe_service m seconds] folds one request's evaluation time
    into the service-time EWMA (alpha 0.2) that deadline-aware
    admission divides by the worker count to predict queue wait. *)
val observe_service : t -> float -> unit

(** Current EWMA in seconds; 0.0 until the first observation. *)
val service_ewma : t -> float

val steals : t -> int
val inflight : t -> int
val accepted : t -> int
val served : t -> int
val timed_out : t -> int
val failed : t -> int
val rejected : t -> int
val collapsed : t -> int
val shed : t -> int
val brownouts : t -> int
val hangups : t -> int
val warm_hits : t -> int
val store_hits : t -> int
val store_misses : t -> int
val store_demoted : t -> int
val compactions : t -> int
val retries : t -> int
val breaker_opens : t -> int

(** [observe_latency m seconds] files one admission-to-response
    latency. *)
val observe_latency : t -> float -> unit

(** Quantile saturation bound: the latency histogram's last bucket is an
    overflow bucket with no meaningful upper edge, so any quantile
    landing there reports exactly this value — read it as
    [">= max_tracked_us"].  Quantiles of an empty histogram are 0. *)
val max_tracked_us : int

(** [snapshot m ~queue_depth] assembles the wire-level stats record;
    LP-cache counters are read from {!Dls.Lp_model.cache_stats}.
    [dispatchers] (default 1) is configuration, not a counter — the
    server passes its dispatcher-thread count through. *)
val snapshot : ?dispatchers:int -> t -> queue_depth:int -> Protocol.stats_rep
