module E = Dls.Errors

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let connect (address : Server.address) =
  let mk domain addr =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          closed = false;
        }
    | exception Unix.Unix_error (err, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (E.Io_error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  in
  match address with
  | Server.Unix_socket path -> mk Unix.PF_UNIX (Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | addr -> mk Unix.PF_INET (Unix.ADDR_INET (addr, port))
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0 ->
        mk Unix.PF_INET (Unix.ADDR_INET (h_addr_list.(0), port))
      | _ | (exception Not_found) ->
        Error (E.Io_error (Printf.sprintf "cannot resolve host %S" host))))

let request_raw t line =
  if t.closed then Error (E.Io_error "client connection is closed")
  else
    match
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      input_line t.ic
    with
    | reply -> Protocol.parse_response reply
    | exception End_of_file -> Error (E.Io_error "server closed the connection")
    | exception (Sys_error msg) -> Error (E.Io_error msg)
    | exception Unix.Unix_error (err, fn, _) ->
      Error (E.Io_error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

let request t req = request_raw t (Protocol.request_to_string req)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client address f =
  match connect address with
  | Error _ as e -> e
  | Ok t ->
    let r =
      match f t with v -> Ok v | exception exn -> close t; raise exn
    in
    close t;
    r
