module E = Dls.Errors

type t = {
  fd : Unix.file_descr;
  reader : Wire.reader;
  mutable closed : bool;
}

type transport_error = [ `Closed | `Closed_mid_line | `Deadline ]

let transport_error_to_string = function
  | `Closed -> "server closed the connection"
  | `Closed_mid_line -> "connection lost mid-response"
  | `Deadline -> "deadline expired waiting for the response"

let connect (address : Server.address) =
  let mk domain addr =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; reader = Wire.reader fd; closed = false }
    | exception Unix.Unix_error (err, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (E.Io_error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))
  in
  match address with
  | Server.Unix_socket path -> mk Unix.PF_UNIX (Unix.ADDR_UNIX path)
  | Server.Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | addr -> mk Unix.PF_INET (Unix.ADDR_INET (addr, port))
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0 ->
        mk Unix.PF_INET (Unix.ADDR_INET (h_addr_list.(0), port))
      | _ | (exception Not_found) ->
        Error (E.Io_error (Printf.sprintf "cannot resolve host %S" host))))

(* One raw request/response cycle: the resilient client builds on this
   because it needs the undecoded reply line (corruption detection
   happens on raw bytes, before parsing). *)
let request_line ?deadline_s t line =
  if t.closed then Error `Closed
  else
    match Wire.write_line t.fd line with
    | Error `Closed -> Error `Closed
    | Ok () -> (
      match Wire.read_line ?deadline_s t.reader with
      | Wire.Line reply -> Ok reply
      | Wire.Eof -> Error `Closed
      | Wire.Eof_mid_line -> Error `Closed_mid_line
      | Wire.Deadline -> Error `Deadline)

let request_raw ?deadline_s t line =
  match request_line ?deadline_s t line with
  | Ok reply -> Protocol.parse_response reply
  | Error e -> Error (E.Io_error (transport_error_to_string e))

let request ?deadline_s t req =
  request_raw ?deadline_s t (Protocol.request_to_string req)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client address f =
  match connect address with
  | Error _ as e -> e
  | Ok t ->
    let r =
      match f t with v -> Ok v | exception exn -> close t; raise exn
    in
    close t;
    r
