(** Buffered line I/O over raw sockets, shared by the server's
    connection threads, {!Client}, {!Resilient} and the {!Chaos} proxy.

    The stdlib channel pair the service used before PR 9 hid two
    failure modes: [input_line] cannot carry a deadline, and a peer
    vanishing mid-write surfaced as an unclassified [Sys_error].  This
    module reads and writes file descriptors directly:

    - {b framing}: a {!reader} buffers whatever [read] returns and
      hands out complete ['\n']-terminated lines — bytes split across
      arbitrary packet boundaries (even one byte per packet) reassemble
      correctly, and a trailing ['\r'] is stripped;
    - {b signals}: every [read]/[write]/[select] retries [EINTR], so a
      signal delivery (SIGTERM during drain, profiling timers) never
      tears a connection down half-way;
    - {b peer death}: [EPIPE]/[ECONNRESET] and friends are returned as
      typed outcomes ({!Eof}, {!Eof_mid_line}, [`Closed]), never raised
      — a client vanishing mid-response must not kill the thread that
      was serving it (the process ignores [SIGPIPE]; see
      {!Server.start});
    - {b deadlines}: {!read_line} takes an optional per-call budget
      measured on the monotonic clock, the building block of the
      resilient client's per-attempt deadline. *)

type reader

(** [reader fd] wraps [fd] with an empty line buffer.  The reader owns
    nothing: closing [fd] is the caller's business. *)
val reader : Unix.file_descr -> reader

type read_result =
  | Line of string  (** one complete line, ['\n'] (and ['\r']) stripped *)
  | Eof  (** peer closed at a line boundary *)
  | Eof_mid_line
      (** peer closed (or reset) with a partial line buffered — the
          partial data is discarded, not delivered as a line *)
  | Deadline
      (** the budget expired before a full line arrived; buffered bytes
          are kept, but a protocol client must treat the stream as
          desynchronised (the reply may land after the caller gave up) *)

(** [read_line ?deadline_s r] returns the next complete line, blocking
    up to [deadline_s] seconds (forever when omitted).  [EINTR] is
    retried; connection resets are reported as EOF outcomes.  Never
    raises on I/O errors. *)
val read_line : ?deadline_s:float -> reader -> read_result

(** [write_line fd s] writes [s ^ "\n"] fully, retrying [EINTR] and
    short writes.  Any write error ([EPIPE], [ECONNRESET], a closed
    descriptor, ...) is [Error `Closed]: for a stream socket they all
    mean the peer is gone.  Never raises. *)
val write_line : Unix.file_descr -> string -> (unit, [ `Closed ]) result

(** [write_bytes fd s] is {!write_line} without the terminator — for
    deliberately partial frames (the chaos proxy's truncation fault). *)
val write_bytes : Unix.file_descr -> string -> (unit, [ `Closed ]) result
