(** Retrying client with automatic reconnect and a circuit breaker —
    the client a fleet should actually run against a flaky network.

    Retry is safe because the protocol makes it so: a request's
    canonical line ({!Protocol.request_key}) fully determines its
    response (data-plane evaluations are pure), so re-sending the same
    line after a transport failure can only re-derive the same answer —
    idempotency keyed on the canonical renderer, no sequence numbers
    needed.

    What retries, what doesn't:
    - transport failures (connect refused, connection lost, per-attempt
      deadline expired): retry on a {e fresh} connection after a capped
      exponential backoff with seeded jitter;
    - transit corruption — a reply line carrying control bytes
      (canonical responses are printable ASCII, so any byte < 0x20 is
      damage), a reply that does not parse, or a [parse] error response
      to a line this client rendered canonically (the server cannot
      have received what was sent): retry, counted in [corrupt];
    - [overloaded]: backpressure, retry after backoff (no breaker
      penalty — the server answered, it is just busy);
    - [timeout], [shed]: {b authoritative} for the attempted budget —
      returned to the caller, not retried (the server already spent, or
      refused to spend, the budget; the deadline is the caller's);
    - every [ok ...] and non-[parse] [error ...] response: returned.

    The circuit breaker (per client instance) trips open after
    [breaker_threshold] consecutive transport/corruption failures;
    while open, requests fail immediately without touching the network
    until [breaker_cooldown] elapses, then one half-open probe is let
    through — success recloses the breaker, failure re-opens it for
    another cooldown.  Trips are counted in {!stats} and, when a
    {!Metrics.t} is attached, in its [breaker_opens]/[retries]
    counters. *)

type config = {
  address : Server.address;
  attempts : int;  (** max request/response attempts per call (>= 1) *)
  attempt_timeout : float option;  (** per-attempt deadline, seconds *)
  backoff_base : float;  (** first backoff, seconds; doubles per retry *)
  backoff_max : float;  (** backoff cap, seconds *)
  breaker_threshold : int;
      (** consecutive failures that trip the breaker open *)
  breaker_cooldown : float;  (** seconds open before the half-open probe *)
  jitter_seed : int;
      (** seeds the deterministic backoff jitter — same seed, same
          request, same attempt => same backoff, so chaos runs replay *)
}

(** attempts 4, attempt_timeout 250ms, backoff 10ms..200ms, breaker
    threshold 5 / cooldown 1s, jitter_seed 0. *)
val default_config : Server.address -> config

type t

type breaker_state = Breaker_closed | Breaker_open | Breaker_half_open

type stats = {
  attempts : int;  (** request/response cycles attempted *)
  retries : int;  (** attempts beyond each request's first *)
  reconnects : int;  (** fresh connections opened after a failure *)
  corrupt : int;  (** replies rejected as transit-corrupted *)
  breaker_opens : int;  (** times the breaker tripped open *)
  fast_fails : int;  (** requests refused locally by an open breaker *)
}

(** [create ?metrics config] makes a client; no connection is opened
    until the first request.  [metrics] (optional) receives
    retry/breaker increments alongside the local {!stats}. *)
val create : ?metrics:Metrics.t -> config -> t

(** [request t req] runs the retry loop for [req].  [Error] only when
    every attempt failed or the breaker is open. *)
val request : t -> Protocol.request -> (Protocol.response, Dls.Errors.t) result

val breaker : t -> breaker_state
val stats : t -> stats

(** [close t] drops the current connection, if any.  The client remains
    usable — the next request reconnects. *)
val close : t -> unit
