(** Consistent-hash front router: one endpoint, N daemon shards.

    The router is the fleet's front door.  It accepts client
    connections speaking the {e unchanged} v2 line protocol and proxies
    each request to a backend daemon shard chosen by consistent-hashing
    the request's canonical key ({!Protocol.request_key}) onto a
    {!Ring} — so equal requests always reach the same shard, and the
    shard-local single-flight dedup, response LRU and journal keep
    their full effect behind the router for free.

    Per backend the router keeps a pool of {!Resilient} clients:
    {!Wire}-framed connections with the retry/backoff/circuit-breaker
    policy, reused across front connections instead of dialling per
    request.  When every resilient attempt at the owning shard fails
    (shard down, breaker open), the request {b fails over} along the
    ring's successor order — the very shards that would own the key if
    the dead one left the ring — so a shard kill degrades capacity,
    not availability, and the keys it owned migrate exactly as the
    minimal-remap property prescribes.  Correctness is unaffected:
    evaluations are pure, any shard computes the bit-identical answer.

    Control plane: [hello] is answered locally (the router speaks the
    same protocol version); [stats] and [health] are fanned out to
    every shard and merged ({!Protocol.merge_stats}; health is the
    worst-of), so one probe sees the whole fleet.  Malformed lines and
    unknown verbs are answered locally without touching a shard. *)

type config = {
  address : Server.address;  (** front address clients connect to *)
  shard_addresses : Server.address list;  (** the backend daemons *)
  vnodes : int;  (** ring points per shard (default 128) *)
  attempts : int;  (** resilient attempts per shard before failover *)
  attempt_timeout : float option;  (** per-attempt deadline, seconds *)
}

(** vnodes 128, attempts 2, attempt_timeout 1s — failover to the next
    shard is the router's retry budget, so per-shard attempts stay
    small.  128 points per shard keeps the key balance within about
    20% of even across realistic fleet sizes; fewer points make the
    arc-length variance (~1/sqrt vnodes) dominate. *)
val default_config :
  Server.address -> shard_addresses:Server.address list -> config

type t

(** Router-side counters — the wire [stats] answer is the {e merged
    shard} view; these count what the router itself did and are read
    by tests and the [dls route] shutdown line. *)
type stats = {
  r_requests : int;  (** request lines handled (all verbs) *)
  r_routed : int array;  (** data-plane requests answered by shard [i] *)
  r_failovers : int;
      (** data-plane requests answered by a shard other than the
          ring owner (after the owner's resilient budget failed) *)
  r_unavailable : int;  (** requests every shard failed to answer *)
  r_local : int;  (** answered without touching a shard *)
  r_fanouts : int;  (** [stats]/[health] fan-out rounds *)
  r_hangups : int;  (** front connections lost mid-request *)
}

(** [start config] binds the front socket and starts serving.
    [Error (Io_error _)] when the address cannot be bound or the shard
    list is empty.  Shards are {e not} contacted at start — a dead
    shard surfaces per-request, through the failover path. *)
val start : config -> (t, Dls.Errors.t) result

(** [stop t] stops accepting, drains the open front connections, closes
    every pooled backend client.  Idempotent. *)
val stop : t -> unit

(** Bound front address (actual port for [Tcp (_, 0)]). *)
val address : t -> Server.address

val stats : t -> stats

(** The placement function, exposed for tests: which shard index owns
    this canonical key. *)
val shard_of_key : t -> string -> int
