(** The scheduling daemon: socket listener, sharded admission queue,
    batching dispatchers, worker pool.

    Request path: a connection thread reads one line, parses it
    ({!Protocol.parse_request}) and offers a job to the bounded
    admission buffer — sharded by {!Protocol.request_key} hash across
    [dispatchers] queues ({!Shards}).  [stats]/[health] are answered
    inline; a full shard answers [overloaded] immediately — that is the
    whole backpressure story, no hidden buffering.  Each dispatcher
    thread drains its own shard in rounds of at most [max_batch] jobs,
    collapses jobs with equal request key onto one evaluation
    (single-flight batching; duplicates receive the same response —
    key-hash sharding guarantees duplicates meet in the same
    dispatcher), runs the unique requests on the shared
    {!Parallel.Pool} (whose work-stealing scheduler lets concurrent
    rounds interleave), and hands every job its reply.  A dispatcher
    whose shard runs dry steals a round from the longest other shard,
    so skewed traffic cannot idle dispatchers (counted in the [steals]
    stat).

    Graceful degradation (PR 9): with a [timeout] configured, admission
    is deadline-aware — when the service-time EWMA predicts a queue
    wait beyond the budget, the request is answered [shed] instead of
    being queued to die; with [brownout = true], three consecutive
    dispatch rounds ending above 3/4 of queue capacity force every
    [solve] onto the certified fast pipeline (bit-identical answers,
    lower worst-case latency) until three rounds end at or below 1/4.
    With [journal = Some path], successful responses are appended to a
    checksummed crash-safe log and replayed into a warm response cache
    at boot, so a restarted daemon answers repeat requests at admission
    time ([warm_hits]).

    {!stop} drains gracefully: stop accepting, close admission, let
    every dispatcher finish everything already admitted, shut the pool
    down, then wake the connection threads.  After [stop] returns, no
    request is in flight and the counters satisfy
    [accepted = served + timed_out + failed + shed]. *)

type address =
  | Unix_socket of string  (** path; created on start, unlinked on stop *)
  | Tcp of string * int  (** host, port; port 0 picks a free port *)

type config = {
  address : address;
  jobs : int;  (** worker-pool parallelism *)
  dispatchers : int;
      (** dispatcher threads, each owning one admission shard
          (default 1, which behaves exactly like the pre-sharding
          single-queue server) *)
  queue_capacity : int;
      (** total admission bound, split evenly across shards — beyond a
          shard's share, [overloaded] *)
  max_batch : int;  (** dispatcher round size *)
  timeout : float option;  (** per-request budget, seconds (cooperative) *)
  dedup : bool;
      (** collapse equal requests onto one evaluation and use the LP
          cache; [false] evaluates every request independently and
          uncached (the bench baseline) *)
  fast : bool;  (** serve [solve] with the certified fast pipeline *)
  worker_delay : float;
      (** artificial seconds of work added to every evaluation — for
          deterministic overload and timeout experiments *)
  journal : string option;
      (** crash-safe response journal path; [Some] also enables the
          warm response cache it replays into at boot *)
  journal_max_bytes : int option;
      (** journal byte budget: past it, a dispatcher compacts the
          journal down to the keys the warm cache still holds
          ({!Journal.compact}); [None] never compacts *)
  store : string option;
      (** tier-2 shared solution store path ({!Store}).  [Some] also
          enables the warm response cache (tier 1): an LRU miss
          consults the store before solving ([store_hits] /
          [store_misses] in the stats), fresh solutions are published
          to it, and tier-1 evictions are counted as demotions.  Many
          shards may share one store file *)
  brownout : bool;
      (** enable the sustained-overload `Exact→`Fast downgrade *)
}

val default_config : address -> config

type t

(** [start config] binds the socket and spawns the listener, dispatcher
    and pool.  [Error (Io_error _)] when the address cannot be bound. *)
val start : config -> (t, Dls.Errors.t) result

(** [stop t] drains and shuts everything down; idempotent, returns only
    once every thread is joined and the socket is closed (and, for
    {!Unix_socket}, unlinked). *)
val stop : t -> unit

(** [address t] is the bound address — with the actual port when the
    config said [Tcp (_, 0)]. *)
val address : t -> address

val stats : t -> Protocol.stats_rep
val health : t -> Protocol.health_rep

(** [cache_dump t] is the warm response cache as [(key, rendered
    response)] pairs in least-to-most-recently-used order — empty
    without a journal.  Test hook: journal replay on a restarted server
    must reproduce the pre-crash dump exactly. *)
val cache_dump : t -> (string * string) list
