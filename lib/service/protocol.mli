(** The scheduler-as-a-service wire protocol.

    Line-oriented, in the {!Dls.Text_format} style: one request per
    line, one response per line, whitespace-separated tokens, [#]
    comments and blank lines ignored on the request side.  Everything is
    plain text, so a session is scriptable with [nc]/[socat] and every
    frame is greppable in a packet capture.

    {2 Request grammar}

    {v
    request  := "solve"       spec option*
              | "solve-multi" spec option*
              | "simulate"    spec option*
              | "check"       spec option*
              | "stats"
              | "health"
              | "hello"
    spec     := c:w:d[,c:w:d ...]          rational components
    option   := key=value                  (no spaces inside a token)
    v}

    Options by request kind:
    - [solve]: [order=fifo|lifo] (default fifo), [model=one-port|two-port],
      [fast=true|false] (default true), [load=Q] (also report the
      makespan for [load] items);
    - [solve-multi]: [workload=size:release[:z],...] (required — the
      {!Dls.Workload.of_spec} form), [mode=steady|batch] (default
      steady), [depth=N] (batch only; omitted = best over depths 0..2);
    - [simulate]: [order=], [items=N] (default 1000),
      [faults=kind:args[;kind:args ...]] — the {!Dls.Faults} text format
      with [;] for newline and [:] for the field separator, e.g.
      [faults=slowdown:2:3/2:1/4;crash:0:5/8] — and
      [replan=resolve|drop|margin:M|none|auto] (default [auto]: try every
      policy, keep the best; only meaningful with [faults]);
    - [check]: none.

    {2 Response grammar}

    A response starts with a status token: [ok <kind> key=value ...],
    [overloaded depth=N capacity=N], [timeout budget=S],
    [shed wait=S budget=S] (deadline-aware admission turned the request
    away because the predicted queue wait already exceeds the budget),
    or [error <code> <message...>].  {!parse_response} inverts
    {!response_to_string} exactly; rationals are rendered in lowest
    terms, floats with enough digits to round-trip.

    Parsers never raise: malformed input yields a typed
    {!Dls.Errors.Parse_error} with 1-based line/column positions, like
    the {!Dls.Platform_io} / {!Dls.Schedule_io} suites.

    {2 Versioning}

    The protocol carries a version number ({!version}); a client opens
    with [hello] and the server answers [ok hello version=V min=M
    verbs=...].  Verbs the server does not know yield the typed
    [unsupported verb=... version=V] response (never a hard parse
    error), so an old server talking to a new client degrades
    gracefully: the client sees which verb was refused and the version
    the server speaks. *)

module Q = Numeric.Rational

(** Protocol version spoken by this build, and the oldest version whose
    requests it still accepts. *)
val version : int

val min_version : int

(** Every verb this build understands, in the canonical order rendered
    by [hello]. *)
val verbs : string list

type order = Fifo | Lifo

type solve_req = {
  s_platform : Dls.Platform.t;
  s_order : order;
  s_model : Dls.Lp_model.model;
  s_fast : bool;
  s_load : Q.t option;
}

type replan = Replan_none | Replan_auto | Replan_policy of Dls.Replan.policy

type simulate_req = {
  m_platform : Dls.Platform.t;
  m_order : order;
  m_items : int;
  m_faults : Dls.Faults.plan option;
  m_replan : replan;
}

type multi_mode = Steady | Batch

type multi_req = {
  u_platform : Dls.Platform.t;
  u_workload : Dls.Workload.t;
  u_mode : multi_mode;
  u_depth : int option;
      (** [Batch] only: fixed interleaving depth; [None] = best over
          depths 0..2 ({!Dls.Steady_state.solve_batch_best}) *)
}

type request =
  | Solve of solve_req
  | Solve_multi of multi_req
  | Simulate of simulate_req
  | Check of Dls.Platform.t
  | Stats
  | Health
  | Hello

(** Exact solver answer; [alpha]/[idle] are platform-indexed, [sigma1]
    is the sending order — together with [rho] this is bit-comparable
    to a direct {!Dls.Lp_model.solve} on the same scenario. *)
type solve_rep = {
  rho : Q.t;
  sigma1 : int array;
  alpha : Q.t array;
  idle : Q.t array;
  makespan : Q.t option;  (** [load / rho] when the request carried [load] *)
}

type simulate_rep = {
  sim_makespan : float;  (** observed completion of the (perturbed) run *)
  lp_makespan : float;  (** fault-free LP prediction *)
  sim_valid : bool;  (** the emitted trace passes the validator *)
  achieved : float option;  (** load returned by the deadline (faulted runs) *)
  achieved_ratio : float option;
  replanned : string option;  (** recovery policy spliced in, if any *)
}

(** Multi-load answer.  [mm_value] is the steady-state period or the
    batch makespan (by [mm_mode]); [mm_throughput] is
    [total_size / mm_value]; [mm_alloc] is the load-major allocation
    (steady) or chunk (batch) matrix, platform-indexed columns. *)
type multi_rep = {
  mm_mode : multi_mode;
  mm_value : Q.t;
  mm_throughput : Q.t;
  mm_depth : int option;  (** batch only: the depth that won *)
  mm_alloc : Q.t array array;
}

type check_rep = { check_ok : bool; violations : int }

type hello_rep = {
  server_version : int;
  server_min_version : int;
  server_verbs : string list;
}

(** Serving counters; the invariant after a drain (no requests in
    flight) is [accepted = served + timed_out + failed + shed]. *)
type stats_rep = {
  accepted : int;  (** admitted to the request queue *)
  served : int;  (** answered with an [ok] response *)
  rejected : int;  (** turned away with [overloaded] (backpressure) *)
  timed_out : int;  (** exceeded the per-request budget *)
  failed : int;  (** admitted but answered with [error] *)
  malformed : int;  (** unparseable request lines (never admitted) *)
  batches : int;  (** dispatcher rounds *)
  max_batch : int;  (** largest round *)
  collapsed : int;  (** requests served by another request's evaluation *)
  cache_hits : int;  (** LP-cache hits across the whole process *)
  cache_misses : int;
  repair_probes : int;
      (** cache misses that found a repairable neighbour
          ({!Dls.Lp_model.resolve_stats}); 0 when absent on the wire
          (pre-repair servers) *)
  repair_wins : int;  (** probes whose repaired basis certified *)
  repair_pivots : int;  (** cumulative repair pivots across wins *)
  dispatchers : int;
      (** dispatcher threads serving the sharded queue; 1 when absent
          on the wire (pre-sharding servers) *)
  steals : int;
      (** dispatch rounds whose first job was stolen from another
          dispatcher's shard; 0 when absent on the wire *)
  shed : int;
      (** accepted but answered [shed] at admission: the predicted
          queue wait already exceeded the request budget, so queueing
          the work would only have produced a later [timeout].  Counts
          toward [accepted]; 0 when absent on the wire *)
  brownouts : int;
      (** times sustained overload switched the server into brownout
          (forced [`Fast] solve mode); 0 when absent on the wire *)
  hangups : int;
      (** connections that vanished mid-request or before their
          response could be written; 0 when absent on the wire *)
  warm_hits : int;
      (** requests answered from the journal-backed response cache at
          admission, without touching the queue; 0 when absent *)
  journal_appended : int;  (** records appended this process lifetime *)
  journal_replayed : int;
      (** records replayed into the response cache at boot; 0 when the
          server runs without [--journal] or on old wire lines *)
  store_hits : int;
      (** tier-1 LRU misses answered from the shared tier-2 solution
          store at admission; 0 when absent on the wire (pre-scale-out
          servers) *)
  store_misses : int;
      (** tier-2 store probes that found nothing and went on to solve;
          0 when absent *)
  store_demoted : int;
      (** tier-1 response-cache evictions while a tier-2 store was
          attached — those entries now live only in the store; 0 when
          absent *)
  compactions : int;
      (** journal compactions triggered by [--journal-max-bytes]; 0
          when absent *)
  queue_depth : int;
  inflight : int;  (** admitted but not yet answered *)
  p50_us : int;  (** latency quantiles, admission to response, in us *)
  p90_us : int;
  p99_us : int;
  max_us : int;
  uptime_s : float;
}

(** Coarse serving state: [Mode_degraded] means the daemon is up but
    browning out (forcing [`Fast] solves) or otherwise shedding load;
    [Mode_draining] means it stopped accepting work and is finishing
    what it has. *)
type health_mode = Mode_healthy | Mode_degraded | Mode_draining

type health_rep = {
  healthy : bool;
  draining : bool;
  h_mode : health_mode;
      (** derived from [healthy]/[draining] when absent on the wire
          (pre-resilience servers) *)
  h_uptime_s : float;
  h_queue_depth : int;
  h_capacity : int;
  h_workers : int;
}

type response =
  | Ok_solve of solve_rep
  | Ok_multi of multi_rep
  | Ok_simulate of simulate_rep
  | Ok_check of check_rep
  | Ok_stats of stats_rep
  | Ok_health of health_rep
  | Ok_hello of hello_rep
  | Overloaded of { depth : int; capacity : int }
  | Timed_out of { budget : float }
  | Shed of { wait : float; budget : float }
      (** deadline-aware admission: the predicted queue wait [wait]
          already exceeds the per-request budget, so the server refuses
          to queue work it knows it would time out.  Unlike
          [Overloaded] (a backpressure signal worth retrying after a
          backoff), [Shed] is authoritative for the attempted deadline. *)
  | Unsupported of { verb : string; server_version : int }
      (** the verb is not in this server's {!verbs} *)
  | Failed of Dls.Errors.t

(** [parse_request ~line s] parses one request line ([line] is the
    1-based position used in error reports).  Never raises. *)
val parse_request : ?file:string -> line:int -> string -> (request, Dls.Errors.t) result

(** [parse_request_v ~line s] distinguishes a verb this build does not
    know ([`Unknown_verb]) from a malformed line: the server answers the
    former with {!Unsupported} and only the latter with a parse error.
    [parse_request] folds [`Unknown_verb] back into a parse error. *)
val parse_request_v :
  ?file:string ->
  line:int ->
  string ->
  [ `Request of request | `Unknown_verb of string | `Malformed of Dls.Errors.t ]

(** [request_to_string r] renders the canonical request line:
    [parse_request] inverts it (worker names are positional, [P1..Pn]).
    Two requests with equal canonical lines are semantically identical,
    which is exactly the single-flight collapse criterion — see
    {!request_key}. *)
val request_to_string : request -> string

(** [request_key r] is the dedup fingerprint used by the server's
    single-flight batching: requests with equal keys receive the same
    response and may be served by one evaluation.  Currently the
    canonical request line. *)
val request_key : request -> string

(** [parse_response s] parses one response line.  Never raises. *)
val parse_response : string -> (response, Dls.Errors.t) result

val response_to_string : response -> string

(** [is_ok r] holds on the [Ok_*] constructors. *)
val is_ok : response -> bool

(** [stats_to_json r] renders the stats record as one flat JSON object
    — exactly the fields of the [ok stats ...] line, same names, same
    order, so CI and dashboards need not scrape the text format. *)
val stats_to_json : stats_rep -> string

(** [merge_stats first rest] folds shard stats into the view a client
    of the whole fleet should see: counters ([accepted], [served],
    [cache_hits], ..., and [dispatchers], which counts serving threads)
    add up; [max_batch] and the latency fields [p50_us]/[p90_us]/
    [p99_us]/[max_us] take the per-shard maximum (bucketed quantiles do
    not merge, so the upper envelope is reported); [uptime_s] is the
    oldest shard's.  The router answers [stats] with this merge over
    every reachable shard. *)
val merge_stats : stats_rep -> stats_rep list -> stats_rep

val order_to_string : order -> string
val platform_to_spec : Dls.Platform.t -> string

(** [platform_of_spec ~line ~col s] parses the compact [c:w:d,...] form;
    positions in errors are relative to [col], the column at which the
    spec token starts. *)
val platform_of_spec :
  ?file:string -> line:int -> col:int -> string -> (Dls.Platform.t, Dls.Errors.t) result
