type 'a t = {
  m : Mutex.t;
  not_empty : Condition.t;
  items : 'a Stdlib.Queue.t;
  cap : int;
  mutable closed : bool;
}

type push_result = Enqueued | Overloaded | Closed

let create ~capacity =
  if capacity <= 0 then
    invalid_arg (Printf.sprintf "Service.Queue.create: capacity %d" capacity);
  {
    m = Mutex.create ();
    not_empty = Condition.create ();
    items = Stdlib.Queue.create ();
    cap = capacity;
    closed = false;
  }

let try_push t x =
  Mutex.lock t.m;
  let r =
    if t.closed then Closed
    else if Stdlib.Queue.length t.items >= t.cap then Overloaded
    else begin
      Stdlib.Queue.push x t.items;
      Condition.signal t.not_empty;
      Enqueued
    end
  in
  Mutex.unlock t.m;
  r

let pop t =
  Mutex.lock t.m;
  let rec wait () =
    match Stdlib.Queue.take_opt t.items with
    | Some x -> Some x
    | None ->
      if t.closed then None
      else begin
        Condition.wait t.not_empty t.m;
        wait ()
      end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

let try_pop t =
  Mutex.lock t.m;
  let r = Stdlib.Queue.take_opt t.items in
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  (* wake every blocked consumer so it can observe the close *)
  Condition.broadcast t.not_empty;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = Stdlib.Queue.length t.items in
  Mutex.unlock t.m;
  n

let capacity t = t.cap

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
