module Q = Numeric.Rational
module P = Protocol

type outcome = {
  sent : int;
  ok : int;
  overloaded : int;
  timeouts : int;
  shed : int;
  failed : int;
  goodput : int;
  retries : int;
  breaker_opens : int;
  p50_ms : float;
  p99_ms : float;
  wall_s : float;
  rps : float;
}

let regimes = [| Check.Fuzz.Small_z; Check.Fuzz.Unit_z; Check.Fuzz.Big_z |]

(* The scenario index must be a pure function of (seed, i); Hashtbl.hash
   is deterministic on immutable ints across runs and domains. *)
let uniform_index ~seed ~distinct i = Hashtbl.hash (seed, i) mod distinct

(* Zipf-like popularity: scenario rank r (0-based) carries weight
   (r+1)^-skew and the request's uniform draw — Hashtbl.hash is 30 bits,
   so dividing by 2^30 yields u in [0,1) — goes through the inverse CDF.
   Still a pure function of (seed, i), so the stream stays invariant
   under jobs and connection count exactly like the uniform mode. *)
let skewed_index ~skew ~seed ~distinct i =
  let u = float_of_int (Hashtbl.hash (seed, i, 0x5e1ec7)) /. 1073741824. in
  let weights =
    Array.init distinct (fun r -> float_of_int (r + 1) ** -.skew)
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let target = u *. total in
  let rec go r acc =
    if r >= distinct - 1 then distinct - 1
    else
      let acc = acc +. weights.(r) in
      if target < acc then r else go (r + 1) acc
  in
  go 0 0.

let scenario_index ?(skew = 0.) ~seed ~distinct i =
  if skew <= 0. then uniform_index ~seed ~distinct i
  else skewed_index ~skew ~seed ~distinct i

let platform_of_scenario ~seed s =
  let rng = Random.State.make [| seed; s; 0x10ad9e4 |] in
  Check.Fuzz.gen_platform rng regimes.(s mod 3)

let request ?(multi = false) ?(skew = 0.) ~seed ~distinct i =
  if distinct <= 0 then invalid_arg "Loadgen.request: distinct must be >= 1";
  let s = scenario_index ~skew ~seed ~distinct i in
  let platform = platform_of_scenario ~seed s in
  match s mod 10 with
  | 7 when multi ->
    (* Only scenario slot 7 changes when [multi] is on; the rest of the
       stream is bit-identical to the classic one. *)
    let rng = Random.State.make [| seed; s; 0x3417171 |] in
    let workload = Check.Fuzz.gen_workload rng regimes.(s mod 3) in
    P.Solve_multi
      {
        u_platform = platform;
        u_workload = workload;
        u_mode = (if s mod 2 = 0 then P.Steady else P.Batch);
        u_depth = None;
      }
  | 8 -> P.Check platform
  | 9 ->
    P.Simulate
      {
        m_platform = platform;
        m_order = P.Fifo;
        m_items = 100;
        m_faults = None;
        m_replan = P.Replan_auto;
      }
  | k ->
    P.Solve
      {
        s_platform = platform;
        s_order = (if k mod 2 = 0 then P.Fifo else P.Lifo);
        s_model = Dls.Lp_model.One_port;
        s_fast = true;
        s_load = (if k < 4 then Some (Q.of_int 1000) else None);
      }

(* ------------------------------------------------------------------ *)
(* Open-loop arrivals                                                  *)

(* Poisson arrival schedule: inter-arrival gaps are exponential with
   mean 1/rps, each gap derived from a hash-based uniform — a pure
   function of (seed, i), like the request stream itself.  The prefix
   sums are therefore identical in every process and for every worker
   count: "process-count-invariant" is by construction, not by
   coordination.  Hashtbl.hash gives 30 bits; +1 keeps the uniform in
   (0, 1] so log never sees 0. *)
let arrivals ~seed ~rps n =
  if rps <= 0. then invalid_arg "Loadgen.arrivals: rps must be > 0";
  let t = ref 0. in
  Array.init n (fun i ->
      let u =
        float_of_int ((Hashtbl.hash (seed, i, 0xa881a1) land 0x3FFFFFFF) + 1)
        /. 1073741824.
      in
      t := !t +. (-.log u /. rps);
      !t)

type tally = {
  mutable t_ok : int;
  mutable t_overloaded : int;
  mutable t_timeouts : int;
  mutable t_shed : int;
  mutable t_failed : int;
  mutable t_goodput : int;
  mutable t_retries : int;
  mutable t_breaker_opens : int;
  mutable t_latencies_ms : float list;  (* of ok responses *)
}

(* Per-connection issue loop, shared by the naive and resilient arms.
   [send] runs one request to completion (including any retries) and
   returns the response or a terminal error. *)
let issue tally ~deadline_s ~send req =
  let t0 = Parallel.Clock.now () in
  let result = send req in
  let elapsed = Parallel.Clock.elapsed_s ~since:t0 in
  match result with
  | Ok resp when P.is_ok resp ->
    tally.t_ok <- tally.t_ok + 1;
    tally.t_latencies_ms <- (elapsed *. 1e3) :: tally.t_latencies_ms;
    let in_time =
      match deadline_s with None -> true | Some d -> elapsed <= d
    in
    if in_time then tally.t_goodput <- tally.t_goodput + 1
  | Ok (P.Overloaded _) -> tally.t_overloaded <- tally.t_overloaded + 1
  | Ok (P.Timed_out _) -> tally.t_timeouts <- tally.t_timeouts + 1
  | Ok (P.Shed _) -> tally.t_shed <- tally.t_shed + 1
  | Ok _ | Error _ -> tally.t_failed <- tally.t_failed + 1

let quantile_ms sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx =
      let i = int_of_float (ceil (float_of_int n *. q)) - 1 in
      if i < 0 then 0 else if i >= n then n - 1 else i
    in
    sorted.(idx)

let run ?(multi = false) ?(skew = 0.) ?resilient ?deadline_s address
    ~connections ~requests ~seed ~distinct () =
  if connections <= 0 || requests < 0 || distinct <= 0 then
    Dls.Errors.invalid "Loadgen.run: bad parameters"
  else begin
    (* Materialize the stream up front so worker threads only do I/O. *)
    let stream =
      Array.init requests (fun i -> request ~multi ~skew ~seed ~distinct i)
    in
    let connections = max 1 (min connections (max requests 1)) in
    let tallies =
      Array.init connections (fun _ ->
          {
            t_ok = 0;
            t_overloaded = 0;
            t_timeouts = 0;
            t_shed = 0;
            t_failed = 0;
            t_goodput = 0;
            t_retries = 0;
            t_breaker_opens = 0;
            t_latencies_ms = [];
          })
    in
    let conn_error = Atomic.make None in
    let naive_worker c =
      match Client.connect address with
      | Error e ->
        if Atomic.get conn_error = None then Atomic.set conn_error (Some e)
      | Ok client ->
        let tally = tallies.(c) in
        let client = ref client in
        let send req =
          match Client.request ?deadline_s:deadline_s !client req with
          | Ok _ as ok -> ok
          | Error _ as err ->
            (* The cycle failed, so this connection's stream position
               is unknowable (a late reply would be matched to the
               wrong request).  Reconnect to stay well-framed; the
               failed request itself is NOT retried — that naivety is
               the point of this arm. *)
            Client.close !client;
            (match Client.connect address with
            | Ok fresh -> client := fresh
            | Error _ -> ());
            err
        in
        let i = ref c in
        while !i < requests do
          issue tally ~deadline_s ~send stream.(!i);
          i := !i + connections
        done;
        Client.close !client
    in
    let resilient_worker rcfg c =
      let rcfg = { rcfg with Resilient.address } in
      let r = Resilient.create rcfg in
      let tally = tallies.(c) in
      let send req = Resilient.request r req in
      let i = ref c in
      while !i < requests do
        issue tally ~deadline_s ~send stream.(!i);
        i := !i + connections
      done;
      let s = Resilient.stats r in
      tally.t_retries <- s.Resilient.retries;
      tally.t_breaker_opens <- s.Resilient.breaker_opens;
      Resilient.close r
    in
    let worker =
      match resilient with
      | None -> naive_worker
      | Some rcfg -> resilient_worker rcfg
    in
    let t0 = Parallel.Clock.now () in
    let threads = Array.init connections (fun c -> Thread.create worker c) in
    Array.iter Thread.join threads;
    let wall_s = Parallel.Clock.elapsed_s ~since:t0 in
    match Atomic.get conn_error with
    | Some e -> Error e
    | None ->
      let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
      let ok = sum (fun t -> t.t_ok) in
      let latencies =
        Array.of_list
          (Array.fold_left
             (fun acc t -> List.rev_append t.t_latencies_ms acc)
             [] tallies)
      in
      Array.sort compare latencies;
      Ok
        {
          sent = requests;
          ok;
          overloaded = sum (fun t -> t.t_overloaded);
          timeouts = sum (fun t -> t.t_timeouts);
          shed = sum (fun t -> t.t_shed);
          failed = sum (fun t -> t.t_failed);
          goodput = sum (fun t -> t.t_goodput);
          retries = sum (fun t -> t.t_retries);
          breaker_opens = sum (fun t -> t.t_breaker_opens);
          p50_ms = quantile_ms latencies 0.50;
          p99_ms = quantile_ms latencies 0.99;
          wall_s;
          rps = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
        }
  end

(* ------------------------------------------------------------------ *)
(* Open-loop driving                                                   *)

type open_outcome = {
  closed : outcome;
  target_rps : float;
  offered_rps : float;
  max_lag_ms : float;
  processes : int;
}

let run_open ?(multi = false) ?(skew = 0.) ?resilient ?deadline_s address
    ~processes ~requests ~rps ~seed ~distinct () =
  if processes <= 0 || requests < 0 || distinct <= 0 || rps <= 0. then
    Dls.Errors.invalid "Loadgen.run_open: bad parameters"
  else begin
    let stream =
      Array.init requests (fun i -> request ~multi ~skew ~seed ~distinct i)
    in
    let schedule = arrivals ~seed ~rps requests in
    let processes = max 1 (min processes (max requests 1)) in
    let tallies =
      Array.init processes (fun _ ->
          {
            t_ok = 0;
            t_overloaded = 0;
            t_timeouts = 0;
            t_shed = 0;
            t_failed = 0;
            t_goodput = 0;
            t_retries = 0;
            t_breaker_opens = 0;
            t_latencies_ms = [];
          })
    in
    let lags = Array.make processes 0. in
    let conn_error = Atomic.make None in
    let t0 = Parallel.Clock.now () in
    (* Worker [p] issues the requests with [i mod processes = p], each
       no earlier than its scheduled arrival.  A busy worker falls
       behind schedule instead of thinning the offered load — that lag
       (reported as [max_lag_ms]) and the achieved-vs-offered gap are
       exactly what an open-loop run is supposed to expose. *)
    let drive p send close_it =
      let tally = tallies.(p) in
      let i = ref p in
      while !i < requests do
        let due = schedule.(!i) in
        let now = Parallel.Clock.elapsed_s ~since:t0 in
        if due > now then Unix.sleepf (due -. now)
        else lags.(p) <- Float.max lags.(p) (now -. due);
        issue tally ~deadline_s ~send stream.(!i);
        i := !i + processes
      done;
      close_it ()
    in
    let naive_worker p =
      match Client.connect address with
      | Error e ->
        if Atomic.get conn_error = None then Atomic.set conn_error (Some e)
      | Ok client ->
        let client = ref client in
        let send req =
          match Client.request ?deadline_s:deadline_s !client req with
          | Ok _ as ok -> ok
          | Error _ as err ->
            Client.close !client;
            (match Client.connect address with
            | Ok fresh -> client := fresh
            | Error _ -> ());
            err
        in
        drive p send (fun () -> Client.close !client)
    in
    let resilient_worker rcfg p =
      let rcfg = { rcfg with Resilient.address } in
      let r = Resilient.create rcfg in
      let send req = Resilient.request r req in
      drive p send (fun () ->
          let s = Resilient.stats r in
          tallies.(p).t_retries <- s.Resilient.retries;
          tallies.(p).t_breaker_opens <- s.Resilient.breaker_opens;
          Resilient.close r)
    in
    let worker =
      match resilient with
      | None -> naive_worker
      | Some rcfg -> resilient_worker rcfg
    in
    let threads = Array.init processes (fun p -> Thread.create worker p) in
    Array.iter Thread.join threads;
    let wall_s = Parallel.Clock.elapsed_s ~since:t0 in
    match Atomic.get conn_error with
    | Some e -> Error e
    | None ->
      let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
      let ok = sum (fun t -> t.t_ok) in
      let latencies =
        Array.of_list
          (Array.fold_left
             (fun acc t -> List.rev_append t.t_latencies_ms acc)
             [] tallies)
      in
      Array.sort compare latencies;
      let closed =
        {
          sent = requests;
          ok;
          overloaded = sum (fun t -> t.t_overloaded);
          timeouts = sum (fun t -> t.t_timeouts);
          shed = sum (fun t -> t.t_shed);
          failed = sum (fun t -> t.t_failed);
          goodput = sum (fun t -> t.t_goodput);
          retries = sum (fun t -> t.t_retries);
          breaker_opens = sum (fun t -> t.t_breaker_opens);
          p50_ms = quantile_ms latencies 0.50;
          p99_ms = quantile_ms latencies 0.99;
          wall_s;
          rps = (if wall_s > 0. then float_of_int ok /. wall_s else 0.);
        }
      in
      let offered_rps =
        if requests = 0 then 0.
        else
          let span = schedule.(requests - 1) in
          if span > 0. then float_of_int requests /. span else 0.
      in
      Ok
        {
          closed;
          target_rps = rps;
          offered_rps;
          max_lag_ms = 1e3 *. Array.fold_left Float.max 0. lags;
          processes;
        }
  end
