(* Fault-injecting line-protocol proxy.  See chaos.mli for plan
   semantics.  The relay is synchronous per connection: read one client
   line, forward, read one upstream line, deliver — the protocol is
   strictly request/response, so nothing is lost by not pipelining. *)

module E = Dls.Errors

type fault =
  | Drop
  | Delay of float
  | Stall
  | Truncate
  | Garble_req
  | Garble_resp
  | Disconnect

type spec = { conn : int; req : int; fault : fault }
type plan = spec list

let fault_to_string = function
  | Drop -> "drop"
  | Delay s -> Printf.sprintf "delay %s" (Printf.sprintf "%.17g" s)
  | Stall -> "stall"
  | Truncate -> "truncate"
  | Garble_req -> "garble-req"
  | Garble_resp -> "garble-resp"
  | Disconnect -> "disconnect"

let to_string plan =
  let b = Buffer.create 256 in
  Buffer.add_string b "# dls chaos v1\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "conn %d req %d %s\n" s.conn s.req
           (fault_to_string s.fault)))
    plan;
  Buffer.contents b

let of_string s =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' s in
  let parse_line lineno line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then Ok None
    else
      let toks =
        List.filter (fun t -> t <> "") (String.split_on_char ' ' trimmed)
      in
      let int_tok name v =
        match int_of_string_opt v with
        | Some i when i >= 0 -> Ok i
        | _ ->
          E.parse_error ~line:lineno ~col:1 "chaos: %s must be a non-negative \
                                             integer, got %S" name v
      in
      match toks with
      | "conn" :: c :: "req" :: r :: fault_toks -> (
        let* conn = int_tok "conn" c in
        let* req = int_tok "req" r in
        let* fault =
          match fault_toks with
          | [ "drop" ] -> Ok Drop
          | [ "stall" ] -> Ok Stall
          | [ "truncate" ] -> Ok Truncate
          | [ "garble-req" ] -> Ok Garble_req
          | [ "garble-resp" ] -> Ok Garble_resp
          | [ "disconnect" ] -> Ok Disconnect
          | [ "delay"; v ] -> (
            match float_of_string_opt v with
            | Some s when Float.is_finite s && s >= 0. -> Ok (Delay s)
            | _ ->
              E.parse_error ~line:lineno ~col:1
                "chaos: delay needs a non-negative finite seconds value, \
                 got %S" v)
          | other ->
            E.parse_error ~line:lineno ~col:1 "chaos: unknown fault %S"
              (String.concat " " other)
        in
        Ok (Some { conn; req; fault }))
      | _ ->
        E.parse_error ~line:lineno ~col:1
          "chaos: expected \"conn C req R <fault>\", got %S" trimmed
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some spec) -> go (lineno + 1) (spec :: acc) rest
      | Error _ as e -> e)
  in
  go 1 [] lines

(* Hash-seeded generation: deterministic in (seed, conns, severity),
   stateless, jobs-invariant.  Every fourth connection is clean by
   construction — the guarantee the retry-budget certification leans
   on. *)
let gen ~seed ~conns ~severity =
  let severity = Float.max 0. (Float.min 1. severity) in
  let h salt i = Hashtbl.hash (seed, i, salt) in
  let specs = ref [] in
  for i = conns - 1 downto 0 do
    if i mod 4 <> 3 && float_of_int (h "p" i land 0xFFFF) /. 65536. < severity
    then begin
      let req = h "req" i mod 3 in
      let fault =
        match h "kind" i mod 7 with
        | 0 -> Drop
        | 1 -> Delay (0.001 +. (0.001 *. float_of_int (h "delay" i mod 8)))
        | 2 -> Stall
        | 3 -> Truncate
        | 4 -> Garble_req
        | 5 -> Garble_resp
        | _ -> Disconnect
      in
      specs := { conn = i; req; fault } :: !specs
    end
  done;
  !specs

(* ------------------------------------------------------------------ *)
(* The proxy                                                           *)

type t = {
  listen_fd : Unix.file_descr;
  bound : Server.address;
  upstream : Server.address;
  faults : (int * int, fault) Hashtbl.t;
  draining : bool Atomic.t;
  mutable listener : Thread.t option;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  mutable next_conn : int;
  mutable stopped : bool;
  stop_m : Mutex.t;
}

let address t = t.bound

let garble line =
  (* Overwrite the middle third with 0x01 — bytes no canonical protocol
     line contains, so the damage is detectable, never silently
     reinterpreted as a different valid message. *)
  let n = String.length line in
  if n = 0 then "\x01"
  else
    String.mapi
      (fun i c ->
        if i >= n / 3 && i < max ((n / 3) + 1) (2 * n / 3) then '\x01' else c)
      line

(* Keep reading (and discarding) until the peer gives up: the stalled
   connection stays open but mute, which is what distinguishes [Stall]
   from [Disconnect] for the client's failure detector. *)
let black_hole reader =
  let rec go () =
    match Wire.read_line reader with
    | Wire.Line _ -> go ()
    | Wire.Eof | Wire.Eof_mid_line | Wire.Deadline -> ()
  in
  go ()

let relay t conn_idx client_fd =
  (match Client.connect t.upstream with
  | Error _ -> ()
  | Ok up ->
    let reader = Wire.reader client_fd in
    let deliver line =
      match Wire.write_line client_fd line with Ok () -> true | Error `Closed -> false
    in
    let rec loop req_idx =
      match Wire.read_line reader with
      | Wire.Eof | Wire.Eof_mid_line | Wire.Deadline -> ()
      | Wire.Line line -> (
        match Hashtbl.find_opt t.faults (conn_idx, req_idx) with
        | Some Drop -> loop (req_idx + 1)
        | Some Stall -> black_hole reader
        | Some Disconnect -> ()
        | fault -> (
          let forward =
            match fault with Some Garble_req -> garble line | _ -> line
          in
          match Client.request_line up forward with
          | Error _ -> ()
          | Ok reply -> (
            match fault with
            | Some Truncate ->
              (* Half the reply, no terminator, then hang up: the
                 client's reader sees Eof_mid_line. *)
              let cut = String.sub reply 0 (String.length reply / 2) in
              ignore (Wire.write_bytes client_fd cut)
            | Some (Delay s) ->
              Unix.sleepf s;
              if deliver reply then loop (req_idx + 1)
            | Some Garble_resp ->
              if deliver (garble reply) then loop (req_idx + 1)
            | _ -> if deliver reply then loop (req_idx + 1))))
    in
    loop 0;
    Client.close up);
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns conn_idx;
  Mutex.unlock t.conns_m;
  try Unix.close client_fd with Unix.Unix_error _ -> ()

(* Poll-accept with a draining flag, as in {!Server.listener_loop}. *)
let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          Mutex.lock t.conns_m;
          let id = t.next_conn in
          t.next_conn <- id + 1;
          let thread = Thread.create (fun () -> relay t id fd) () in
          Hashtbl.add t.conns id (fd, thread);
          Mutex.unlock t.conns_m;
          loop ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        | exception Unix.Unix_error _ -> loop ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
  in
  loop ()

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let bind_socket (address : Server.address) =
  match address with
  | Server.Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, address)
  | Server.Tcp (host, port) ->
    let addr = resolve_host host in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Server.Tcp (host, p)
      | _ -> address
    in
    (fd, bound)

let start ~listen ~upstream plan =
  match bind_socket listen with
  | exception Unix.Unix_error (err, fn, arg) ->
    Error
      (E.Io_error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)))
  | exception Not_found -> Error (E.Io_error "cannot resolve host")
  | listen_fd, bound ->
    let faults = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace faults (s.conn, s.req) s.fault) plan;
    let t =
      {
        listen_fd;
        bound;
        upstream;
        faults;
        draining = Atomic.make false;
        listener = None;
        conns = Hashtbl.create 16;
        conns_m = Mutex.create ();
        next_conn = 0;
        stopped = false;
        stop_m = Mutex.create ();
      }
    in
    t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
    Ok t

let stop t =
  Mutex.lock t.stop_m;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_m;
  if not already then begin
    Atomic.set t.draining true;
    Option.iter Thread.join t.listener;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let conns =
      Mutex.lock t.conns_m;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_m;
      l
    in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, thread) -> Thread.join thread) conns;
    match t.bound with
    | Server.Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Server.Tcp _ -> ()
  end
