(** Deterministic load generator for the daemon.

    The request stream depends only on [(seed, distinct, i)]: request
    [i] draws scenario [s = hash(seed, i) mod distinct], whose platform
    comes from {!Check.Fuzz.gen_platform} seeded by [(seed, s)] with the
    z-regime cycling [z<1], [z=1], [z>1] over [s] — so every run covers
    all three regimes of the paper, and two runs with the same seed
    issue the same multiset of requests whatever the connection count
    (connection [c] carries the requests with [i mod connections = c]).
    Small [distinct] values make the stream duplicate-heavy, which is
    what exercises the server's single-flight batching and the shared
    LP cache.

    Used by the service bench (Part 5), the CI smoke job and
    [dls loadgen]: all three see the same traffic by construction. *)

type outcome = {
  sent : int;
  ok : int;
  overloaded : int;
  timeouts : int;
  shed : int;  (** [shed] responses (deadline-aware admission) *)
  failed : int;  (** transport errors and [error] responses *)
  goodput : int;
      (** [ok] responses that landed within [deadline_s] of being
          issued (client-side clock, retries included); equals [ok]
          when no deadline is set.  This is the number a user actually
          cares about under chaos — an answer after the deadline is
          throughput, not goodput. *)
  retries : int;  (** resilient arm only: attempts beyond each first *)
  breaker_opens : int;  (** resilient arm only: circuit-breaker trips *)
  p50_ms : float;  (** latency quantiles over [ok] responses, ms *)
  p99_ms : float;
  wall_s : float;
  rps : float;  (** ok responses per wall-clock second *)
}

(** [request ~seed ~distinct i] is the [i]-th request of the stream.
    With [~multi:true] (default false) scenario slot 7 carries a
    [solve-multi] request (steady or batch by parity) instead of a
    [solve]; every other slot is bit-identical to the classic stream,
    so existing benches and smoke jobs are unaffected.

    [~skew] (default 0) selects the key-popularity distribution.  [0.]
    is the classic uniform draw over the [distinct] scenarios.  A
    positive value makes scenario rank [r] (0-based) proportional to
    [(r+1)^-skew] — Zipf-like, so e.g. [skew = 1.] sends a hot head of
    traffic to scenario 0 with a long tail.  The skewed stream is still
    a pure function of [(seed, distinct, skew, i)]: same seed, same
    multiset of requests, independent of connection count or server
    [jobs]/[dispatchers].  Skewed traffic concentrates request keys on
    few dispatcher shards, which is what exercises the server's
    steal-based rebalancing. *)
val request :
  ?multi:bool -> ?skew:float -> seed:int -> distinct:int -> int ->
  Protocol.request

(** [run address ~connections ~requests ~seed ~distinct ()] replays the
    first [requests] requests of the stream over [connections]
    concurrent connections and aggregates the outcome.  [~multi] and
    [~skew] are passed to {!request}.

    [~resilient] switches the per-connection client from the naive
    single-attempt {!Client} (which, after a transport failure, drops
    the request and reconnects to stay well-framed) to a {!Resilient}
    client with the given configuration (its [address] field is
    overridden by [address]); each connection gets its own breaker.

    [~deadline_s] is the per-request answer-by deadline used for the
    [goodput] count and, in the naive arm, as the read deadline of each
    cycle.  The request stream itself never depends on either option,
    so chaos runs stay seed-deterministic and connection-invariant. *)
val run :
  ?multi:bool ->
  ?skew:float ->
  ?resilient:Resilient.config ->
  ?deadline_s:float ->
  Server.address ->
  connections:int ->
  requests:int ->
  seed:int ->
  distinct:int ->
  unit ->
  (outcome, Dls.Errors.t) result

(** [arrivals ~seed ~rps n] is the open-loop schedule: arrival time of
    request [i], as the prefix sum of exponential inter-arrival gaps
    with mean [1/rps] — a Poisson process at target rate [rps].  Each
    gap is derived from a hash of [(seed, i)], so the schedule is a
    pure function of its arguments: identical in every process and for
    every worker partition.  Monotone nondecreasing. *)
val arrivals : seed:int -> rps:float -> int -> float array

(** Outcome of an open-loop run.  [closed] aggregates exactly like
    {!run}; the extra fields carry the offered-vs-achieved accounting:
    [target_rps] is the requested rate, [offered_rps] the schedule's
    realised rate ([n / last arrival] — close to target, not equal,
    since the schedule is one random draw), and [closed.rps] the
    achieved rate.  [max_lag_ms] is the worst scheduling lag: how far
    behind its arrival time a request was issued because the driving
    process was still busy — the open-loop saturation signal (a closed
    loop would have silently thinned the load instead). *)
type open_outcome = {
  closed : outcome;
  target_rps : float;
  offered_rps : float;
  max_lag_ms : float;
  processes : int;
}

(** [run_open address ~processes ~requests ~rps ~seed ~distinct ()]
    replays the stream {e open-loop}: request [i] is issued no earlier
    than {!arrivals}[.(i)], by driving process [i mod processes] (one
    connection each; threads here, the multi-process CLI arms simply
    pass disjoint [processes] slices).  The request multiset {e and}
    the arrival schedule are invariant under [processes] — only the
    issue interleaving changes.  [~multi]/[~skew]/[~resilient]/
    [~deadline_s] as in {!run}. *)
val run_open :
  ?multi:bool ->
  ?skew:float ->
  ?resilient:Resilient.config ->
  ?deadline_s:float ->
  Server.address ->
  processes:int ->
  requests:int ->
  rps:float ->
  seed:int ->
  distinct:int ->
  unit ->
  (open_outcome, Dls.Errors.t) result
