(* Consistent hashing with virtual nodes.  See ring.mli for the
   affinity and minimal-remap contracts.

   The ring is a sorted array of (point, shard) pairs; lookup is a
   binary search for the first point at or after the key's hash in
   unsigned 64-bit order, wrapping to the smallest point.  Points
   collide only if FNV-1a collides on two vnode labels — astronomically
   unlikely at our scale, and harmless anyway: sorting breaks the tie
   by shard index, deterministically. *)

(* FNV-1a, 64-bit: h := (h xor byte) * prime.  Deterministic on the
   bytes alone, unlike [Hashtbl.hash], which samples long strings. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* splitmix64 finalizer.  Raw FNV-1a clusters labels that share a
   prefix and differ only near the end — exactly the shape of vnode
   labels ("shard#0", "shard#1", ...), whose hashes then sit within a
   few multiples of the prime of each other and collapse a shard's
   points into one arc.  Avalanching the result spreads those
   differences across all 64 bits. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let hash s = mix (fnv s)

type t = {
  points : (int64 * int) array;  (* sorted by point, unsigned *)
  members : bool array;  (* members.(i) <=> shard i still on the ring *)
  n_shards : int;  (* live shards = number of [true]s in members *)
  vnodes : int;
}

let compare_points (p1, s1) (p2, s2) =
  let c = Int64.unsigned_compare p1 p2 in
  if c <> 0 then c else compare s1 s2

let create ~vnodes names =
  if vnodes <= 0 then invalid_arg "Ring.create: vnodes must be >= 1";
  if Array.length names = 0 then invalid_arg "Ring.create: no shards";
  let points =
    Array.init
      (Array.length names * vnodes)
      (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash (Printf.sprintf "%s#%d" names.(shard) v), shard))
  in
  Array.sort compare_points points;
  {
    points;
    members = Array.make (Array.length names) true;
    n_shards = Array.length names;
    vnodes;
  }

let shards t = t.n_shards
let vnodes t = t.vnodes

(* Index of the first point at or after [h] (unsigned), wrapping. *)
let successor_index t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
    else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key = snd t.points.(successor_index t (hash key))

let route t key =
  let n = Array.length t.points in
  let start = successor_index t (hash key) in
  let seen = Array.make (Array.length t.members) false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < t.n_shards && !i < n do
    let shard = snd t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      order := shard :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order

let remove t i =
  if i < 0 || i >= Array.length t.members || not t.members.(i) then
    invalid_arg "Ring.remove: no such shard";
  if t.n_shards <= 1 then invalid_arg "Ring.remove: cannot empty the ring";
  let members = Array.copy t.members in
  members.(i) <- false;
  {
    points = Array.of_list
        (List.filter (fun (_, s) -> s <> i) (Array.to_list t.points));
    members;
    n_shards = t.n_shards - 1;
    vnodes = t.vnodes;
  }
