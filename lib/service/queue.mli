(** Bounded multi-producer/multi-consumer queue — the admission buffer
    between connection threads and the dispatcher.

    The bound is the backpressure mechanism: {!try_push} never blocks,
    it reports [Overloaded] when the queue is full so the caller can
    answer the client immediately instead of queueing unbounded work.
    Consumers block in {!pop} until an item arrives or the queue is
    {!close}d {e and} drained, which is exactly the dispatcher's
    graceful-shutdown condition. *)

type 'a t

type push_result = Enqueued | Overloaded | Closed

(** [create ~capacity] builds an empty queue admitting at most
    [capacity] items ([capacity >= 1]).
    @raise Invalid_argument on a non-positive capacity. *)
val create : capacity:int -> 'a t

(** [try_push q x] enqueues [x] unless the queue is full ([Overloaded])
    or closed ([Closed]).  Never blocks. *)
val try_push : 'a t -> 'a -> push_result

(** [pop q] blocks until an item is available and dequeues it; [None]
    once the queue is closed and every item has been drained. *)
val pop : 'a t -> 'a option

(** [try_pop q] dequeues an item if one is immediately available. *)
val try_pop : 'a t -> 'a option

(** [close q] rejects all further pushes; blocked and future {!pop}s
    still drain the remaining items, then return [None].  Idempotent. *)
val close : 'a t -> unit

val length : 'a t -> int
val capacity : 'a t -> int
val is_closed : 'a t -> bool
