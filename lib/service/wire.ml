(* Buffered deadline-aware line I/O over raw file descriptors.  See
   wire.mli for the contract.  Everything here is exception-free at the
   I/O boundary: Unix errors that mean "peer is gone" become typed
   results, EINTR is always retried, and partial reads/writes loop. *)

module Clock = Parallel.Clock

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received but not yet delivered as a line *)
  chunk : Bytes.t;  (* scratch for Unix.read *)
  mutable scanned : int;  (* prefix of [buf] known to contain no '\n' *)
}

let chunk_size = 4096

let reader fd =
  { fd; buf = Buffer.create 256; chunk = Bytes.create chunk_size; scanned = 0 }

type read_result = Line of string | Eof | Eof_mid_line | Deadline

(* Errors that mean the peer hung up or reset; anything else
   unexpected is treated the same way — for a stream socket there is
   no useful distinction for the caller. *)
let closed_errno = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ENOTCONN
  | Unix.EBADF | Unix.ESHUTDOWN ->
      true
  | _ -> false

(* Extract the first complete line from [r.buf], if any, using
   [r.scanned] to avoid rescanning the same prefix on every arrival of
   a tiny chunk (the byte-at-a-time case would otherwise be O(n^2)). *)
let take_line r =
  let s = Buffer.contents r.buf in
  let n = String.length s in
  match String.index_from_opt s r.scanned '\n' with
  | None ->
      r.scanned <- n;
      None
  | Some i ->
      let stop = if i > 0 && s.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub s 0 stop in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (n - i - 1);
      r.scanned <- 0;
      Some line

(* Wait until [fd] is readable or [until] (monotonic, from Clock.now)
   passes.  [None] = wait forever.  Returns false on timeout. *)
let rec wait_readable fd until =
  let budget =
    match until with
    | None -> -1.0
    | Some t ->
        let left = t -. Clock.now () in
        if left <= 0.0 then 0.0 else left
  in
  match Unix.select [ fd ] [] [] budget with
  | [], _, _ -> (
      match until with
      | Some t when Clock.now () >= t -> false
      | _ -> wait_readable fd until)
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd until

let read_line ?deadline_s r =
  let until =
    match deadline_s with None -> None | Some d -> Some (Clock.now () +. d)
  in
  let rec loop () =
    match take_line r with
    | Some line -> Line line
    | None ->
        if not (wait_readable r.fd until) then Deadline
        else begin
          match Unix.read r.fd r.chunk 0 chunk_size with
          | 0 -> if Buffer.length r.buf = 0 then Eof else Eof_mid_line
          | n ->
              Buffer.add_subbytes r.buf r.chunk 0 n;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error (e, _, _) when closed_errno e ->
              if Buffer.length r.buf = 0 then Eof else Eof_mid_line
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              (* Spurious readiness; go back to waiting. *)
              loop ()
        end
  in
  loop ()

let write_all fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> Error `Closed
  in
  go 0

let write_line fd s = write_all fd (Bytes.of_string (s ^ "\n"))
let write_bytes fd s = write_all fd (Bytes.of_string s)
