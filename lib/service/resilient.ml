(* Retrying client with reconnect and circuit breaker.  See
   resilient.mli for the retry/no-retry policy table. *)

module E = Dls.Errors
module P = Protocol
module Clock = Parallel.Clock

type config = {
  address : Server.address;
  attempts : int;
  attempt_timeout : float option;
  backoff_base : float;
  backoff_max : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  jitter_seed : int;
}

let default_config address =
  {
    address;
    attempts = 4;
    attempt_timeout = Some 0.25;
    backoff_base = 0.01;
    backoff_max = 0.2;
    breaker_threshold = 5;
    breaker_cooldown = 1.0;
    jitter_seed = 0;
  }

type breaker_state = Breaker_closed | Breaker_open | Breaker_half_open

type stats = {
  attempts : int;
  retries : int;
  reconnects : int;
  corrupt : int;
  breaker_opens : int;
  fast_fails : int;
}

type t = {
  cfg : config;
  metrics : Metrics.t option;
  mutable conn : Client.t option;
  mutable state : breaker_state;
  mutable open_until : float;  (* monotonic; meaningful when Breaker_open *)
  mutable consecutive_failures : int;
  mutable s_attempts : int;
  mutable s_retries : int;
  mutable s_reconnects : int;
  mutable s_corrupt : int;
  mutable s_breaker_opens : int;
  mutable s_fast_fails : int;
}

let create ?metrics cfg =
  {
    cfg;
    metrics;
    conn = None;
    state = Breaker_closed;
    open_until = 0.;
    consecutive_failures = 0;
    s_attempts = 0;
    s_retries = 0;
    s_reconnects = 0;
    s_corrupt = 0;
    s_breaker_opens = 0;
    s_fast_fails = 0;
  }

let stats t =
  {
    attempts = t.s_attempts;
    retries = t.s_retries;
    reconnects = t.s_reconnects;
    corrupt = t.s_corrupt;
    breaker_opens = t.s_breaker_opens;
    fast_fails = t.s_fast_fails;
  }

let breaker t = t.state

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    Client.close c;
    t.conn <- None

let close = drop_conn

(* Canonical responses are printable ASCII; any control byte in a reply
   line is transit damage, whatever the line happens to parse as. *)
let looks_corrupt line =
  let n = String.length line in
  let rec go i = i < n && (Char.code line.[i] < 0x20 || go (i + 1)) in
  go 0

let trip_open t =
  t.state <- Breaker_open;
  t.open_until <- Clock.now () +. t.cfg.breaker_cooldown;
  t.s_breaker_opens <- t.s_breaker_opens + 1;
  Option.iter Metrics.incr_breaker_opens t.metrics

(* A transport/corruption failure: drop the connection, advance the
   breaker.  A failed half-open probe re-opens immediately; in closed
   state, [breaker_threshold] consecutive failures trip it. *)
let note_failure t =
  drop_conn t;
  match t.state with
  | Breaker_half_open -> trip_open t
  | Breaker_closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.cfg.breaker_threshold then trip_open t
  | Breaker_open -> ()

let note_success t =
  t.consecutive_failures <- 0;
  if t.state <> Breaker_closed then t.state <- Breaker_closed

(* Deterministic jitter in [0.5, 1.5): same (seed, key, attempt) =>
   same factor, so a seeded chaos run replays byte-for-byte. *)
let backoff_s t ~key ~attempt =
  let raw = t.cfg.backoff_base *. (2. ** float_of_int attempt) in
  let capped = Float.min t.cfg.backoff_max raw in
  let h = Hashtbl.hash (t.cfg.jitter_seed, key, attempt, "backoff") in
  let jitter = 0.5 +. (float_of_int (h land 0xFFFF) /. 65536.) in
  capped *. jitter

let connect t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
    match Client.connect t.cfg.address with
    | Ok c ->
      if t.s_attempts > 0 then begin
        t.s_reconnects <- t.s_reconnects + 1
      end;
      t.conn <- Some c;
      Ok c
    | Error e -> Error e)

(* One attempt: connect if needed, run the cycle, classify. *)
type attempt_outcome =
  | Final of (P.response, E.t) result
  | Retry_transport of string
  | Retry_corrupt
  | Retry_overloaded

let attempt t line =
  match connect t with
  | Error e -> Retry_transport (E.to_string e)
  | Ok c -> (
    t.s_attempts <- t.s_attempts + 1;
    match Client.request_line ?deadline_s:t.cfg.attempt_timeout c line with
    | Error te -> Retry_transport (Client.transport_error_to_string te)
    | Ok reply ->
      if looks_corrupt reply then Retry_corrupt
      else (
        match P.parse_response reply with
        | Error _ -> Retry_corrupt
        | Ok (P.Failed (E.Parse_error _)) ->
          (* We rendered the line canonically, so the server cannot
             have received what we sent: the request was garbled in
             transit.  Retrying sends the intact line again. *)
          Retry_corrupt
        | Ok (P.Overloaded _) -> Retry_overloaded
        | Ok resp ->
          (* Timed_out and Shed are authoritative (the server spent or
             refused the budget); everything else is the answer. *)
          Final (Ok resp)))

let request t req =
  let line = P.request_to_string req in
  let rec go attempt_idx last_err =
    if attempt_idx >= t.cfg.attempts then
      Error
        (E.Io_error
           (Printf.sprintf "resilient: %d attempts failed; last: %s"
              t.cfg.attempts last_err))
    else begin
      (* Breaker gate.  An open breaker past its cooldown lets exactly
         this call through as the half-open probe. *)
      match t.state with
      | Breaker_open when Clock.now () < t.open_until ->
        t.s_fast_fails <- t.s_fast_fails + 1;
        Error (E.Io_error "resilient: circuit breaker is open")
      | state ->
        if state = Breaker_open then t.state <- Breaker_half_open;
        if attempt_idx > 0 then begin
          t.s_retries <- t.s_retries + 1;
          Option.iter Metrics.incr_retries t.metrics;
          Unix.sleepf (backoff_s t ~key:line ~attempt:(attempt_idx - 1))
        end;
        (match attempt t line with
        | Final (Ok resp) ->
          note_success t;
          Ok resp
        | Final (Error _ as e) ->
          note_success t;
          e
        | Retry_transport msg ->
          note_failure t;
          go (attempt_idx + 1) msg
        | Retry_corrupt ->
          t.s_corrupt <- t.s_corrupt + 1;
          note_failure t;
          go (attempt_idx + 1) "corrupted reply"
        | Retry_overloaded ->
          (* The server answered: the path works.  No breaker penalty,
             but back off before adding to its queue again. *)
          note_success t;
          go (attempt_idx + 1) "server overloaded")
    end
  in
  go 0 "no attempt made"
