module Q = Numeric.Rational
module P = Protocol
module E = Dls.Errors

type address = Unix_socket of string | Tcp of string * int

type config = {
  address : address;
  jobs : int;
  dispatchers : int;
  queue_capacity : int;
  max_batch : int;
  timeout : float option;
  dedup : bool;
  fast : bool;
  worker_delay : float;
  journal : string option;
  journal_max_bytes : int option;
  store : string option;
  brownout : bool;
}

let default_config address =
  {
    address;
    jobs = Parallel.Pool.default_jobs ();
    dispatchers = 1;
    queue_capacity = 64;
    max_batch = 32;
    timeout = None;
    dedup = true;
    fast = true;
    worker_delay = 0.;
    journal = None;
    journal_max_bytes = None;
    store = None;
    brownout = false;
  }

(* Warm response cache, active when a journal is configured.  Holds
   rendered-response entries keyed by canonical request key; sized well
   past the admission bound so a restart can replay a useful history. *)
let response_cache_capacity = 4096

type job = {
  request : P.request;
  key : string;
  admitted : float;
  jm : Mutex.t;
  jc : Condition.t;
  mutable reply : P.response option;
}

type t = {
  cfg : config;
  bound : address;
  shards : job Shards.t;
  metrics : Metrics.t;
  pool : Parallel.Pool.t;
  cache : (string, P.response) Parallel.Lru.t option;
      (* tier-1 warm responses; [Some] iff [cfg.journal] or [cfg.store] *)
  journal : Journal.t option;
  store : Store.t option;  (* tier-2 shared solution store *)
  (* Brownout hysteresis: consecutive dispatch rounds that ended with
     the queue above 3/4 (resp. at or below 1/4) of capacity.  Written
     by dispatcher threads; a lost update under contention only delays
     the flip by a round. *)
  high_rounds : int Atomic.t;
  low_rounds : int Atomic.t;
  listen_fd : Unix.file_descr;
  draining : bool Atomic.t;
  mutable listener : Thread.t option;
  mutable dispatchers : Thread.t list;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  mutable next_conn : int;
  stop_m : Mutex.t;
  mutable stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* Request evaluation (dispatcher side, runs on pool workers)          *)

let eval_solve ~brownout cfg (r : P.solve_req) =
  let p = r.P.s_platform in
  let scenario =
    match r.P.s_order with
    | P.Fifo -> Dls.Scenario.fifo_exn p (Dls.Fifo.order p)
    | P.Lifo -> Dls.Scenario.lifo_exn p (Dls.Lifo.order p)
  in
  (* Brownout downgrades `Exact to the certified fast pipeline.  The
     response stays bit-identical: the fast path certifies its answer
     against the exact optimum and falls back on any mismatch, so the
     downgrade trades worst-case latency, never correctness. *)
  let fast = (cfg.fast && r.P.s_fast) || brownout in
  let mode =
    if cfg.dedup && fast then `Cached else if fast then `Fast else `Exact
  in
  let sol = Dls.Solve.solve_exn ~mode ~model:r.P.s_model scenario in
  P.Ok_solve
    {
      rho = sol.Dls.Lp_model.rho;
      sigma1 = Array.copy scenario.Dls.Scenario.sigma1;
      alpha = sol.Dls.Lp_model.alpha;
      idle = sol.Dls.Lp_model.idle;
      makespan =
        Option.map (fun load -> Dls.Lp_model.time_for_load sol ~load) r.P.s_load;
    }

let eval_multi (r : P.multi_req) =
  let p = r.P.u_platform in
  let w = r.P.u_workload in
  match r.P.u_mode with
  | P.Steady ->
    let s = E.get_exn (Dls.Steady_state.solve p w) in
    P.Ok_multi
      {
        mm_mode = P.Steady;
        mm_value = s.Dls.Steady_state.period;
        mm_throughput = s.Dls.Steady_state.throughput;
        mm_depth = None;
        mm_alloc = Array.map Array.copy s.Dls.Steady_state.alloc;
      }
  | P.Batch ->
    let b =
      E.get_exn
        (match r.P.u_depth with
        | Some depth -> Dls.Steady_state.solve_batch ~depth p w
        | None -> Dls.Steady_state.solve_batch_best p w)
    in
    let makespan = b.Dls.Steady_state.makespan in
    P.Ok_multi
      {
        mm_mode = P.Batch;
        mm_value = makespan;
        mm_throughput = Q.div (Dls.Workload.total_size w) makespan;
        mm_depth = Some b.Dls.Steady_state.depth;
        mm_alloc = Array.map Array.copy b.Dls.Steady_state.chunks;
      }

let eval_simulate (r : P.simulate_req) =
  let p = r.P.m_platform in
  let sol =
    match r.P.m_order with
    | P.Fifo -> Dls.Fifo.optimal p
    | P.Lifo -> Dls.Lifo.optimal p
  in
  let load = Q.of_int r.P.m_items in
  let lp_makespan = Q.to_float (Dls.Lp_model.time_for_load sol ~load) in
  match r.P.m_faults with
  | None ->
    let plan = Sim.Star.plan_of_rounded sol ~total:r.P.m_items in
    let trace = Sim.Star.execute p plan in
    P.Ok_simulate
      {
        sim_makespan = trace.Sim.Trace.makespan;
        lp_makespan;
        sim_valid = Sim.Trace.is_valid trace;
        achieved = None;
        achieved_ratio = None;
        replanned = None;
      }
  | Some plan ->
    E.get_exn (Dls.Faults.validate_for p plan);
    let policies =
      match r.P.m_replan with
      | P.Replan_none -> []
      | P.Replan_auto -> Dls.Replan.default_policies
      | P.Replan_policy pol -> [ pol ]
    in
    let outcome = Dls.Replan.respond_exn ~policies plan sol ~load in
    let original = Dls.Schedule.for_load sol ~load in
    let trace =
      E.get_exn
        (Sim.Faults.execute_decision p plan ~original
           ~decision:outcome.Dls.Replan.decision)
    in
    let m =
      Sim.Faults.metrics
        ~deadline:(Q.to_float outcome.Dls.Replan.deadline)
        ~total:(Q.to_float load) trace
    in
    P.Ok_simulate
      {
        sim_makespan = trace.Sim.Trace.makespan;
        lp_makespan;
        sim_valid = Sim.Trace.is_valid trace;
        achieved = Some m.Sim.Faults.achieved;
        achieved_ratio = Some m.Sim.Faults.achieved_ratio;
        replanned =
          Option.map Dls.Replan.policy_to_string outcome.Dls.Replan.policy_used;
      }

let eval_check p =
  let count label sol acc =
    ignore label;
    let schedule =
      match
        Check.Validator.errors_of_result p (Check.Validator.validate_solved sol)
      with
      | Ok () -> 0
      | Error msgs -> List.length msgs
    in
    let certificate =
      match Check.Certificate.check sol with
      | Ok () -> 0
      | Error msgs -> List.length msgs
    in
    acc + schedule + certificate
  in
  let violations =
    count "fifo" (Dls.Fifo.optimal p) 0 |> count "lifo" (Dls.Lifo.optimal p)
  in
  P.Ok_check { check_ok = violations = 0; violations }

let eval_request ~brownout cfg = function
  | P.Solve r -> eval_solve ~brownout cfg r
  | P.Solve_multi r -> eval_multi r
  | P.Simulate r -> eval_simulate r
  | P.Check p -> eval_check p
  (* answered inline by the connection thread; kept total for safety *)
  | P.Stats | P.Health | P.Hello ->
    P.Failed (E.Invalid_scenario "stats/health/hello are not queueable")

(* Total: every exception becomes a response, so a pool batch never
   aborts on a bad request (Pool.map would re-raise and discard the
   whole round otherwise). *)
let eval_job t job =
  let brownout = Metrics.brownout_active t.metrics in
  let t0 = Parallel.Clock.now () in
  let resp =
    match
      Parallel.Pool.timed ?timeout:t.cfg.timeout ~index:0
        (fun () ->
          if t.cfg.worker_delay > 0. then Unix.sleepf t.cfg.worker_delay;
          eval_request ~brownout t.cfg job.request)
        ()
    with
    | resp -> resp
    | exception Parallel.Pool.Task_timeout { budget; _ } ->
      P.Timed_out { budget }
    | exception E.Error e -> P.Failed e
    | exception exn -> P.Failed (E.Invalid_scenario (Printexc.to_string exn))
  in
  (* Feed the admission predictor with the evaluation time (including
     [worker_delay], which keeps overload experiments deterministic). *)
  Metrics.observe_service t.metrics (Parallel.Clock.elapsed_s ~since:t0);
  resp

(* ------------------------------------------------------------------ *)
(* Dispatcher: batch, collapse, evaluate, distribute                   *)

let deliver t job resp =
  (match resp with
  | P.Ok_solve _ | P.Ok_multi _ | P.Ok_simulate _ | P.Ok_check _ | P.Ok_stats _
  | P.Ok_health _ | P.Ok_hello _ ->
    Metrics.incr_served t.metrics
  | P.Timed_out _ -> Metrics.incr_timed_out t.metrics
  | P.Shed _ ->
    (* Sheds are answered at admission, never delivered from a
       dispatcher; counted defensively should that ever change. *)
    Metrics.incr_shed t.metrics
  | P.Overloaded _ | P.Unsupported _ | P.Failed _ ->
    Metrics.incr_failed t.metrics);
  Metrics.observe_latency t.metrics
    (Parallel.Clock.elapsed_s ~since:job.admitted);
  Metrics.decr_inflight t.metrics;
  Mutex.lock job.jm;
  job.reply <- Some resp;
  Condition.signal job.jc;
  Mutex.unlock job.jm

let dispatch_round t ~src first =
  (* Greedily drain the shard the first job came from, up to the round
     bound — after a steal that is the victim's shard, so a steal
     rebalances a whole round, not one job. *)
  let batch = ref [ first ] in
  let n = ref 1 in
  let continue = ref true in
  while !continue && !n < t.cfg.max_batch do
    match Shards.try_pop_from t.shards src with
    | Some j ->
      batch := j :: !batch;
      incr n
    | None -> continue := false
  done;
  let batch = List.rev !batch in
  (* Group by request key, first-seen order.  With dedup off every job
     is its own group. *)
  let groups : (string, job list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun j ->
      let key = if t.cfg.dedup then j.key else string_of_int (Hashtbl.length groups) in
      match Hashtbl.find_opt groups key with
      | Some cell -> cell := j :: !cell
      | None ->
        let cell = ref [ j ] in
        Hashtbl.add groups key cell;
        order := cell :: !order)
    batch;
  let uniques = Array.of_list (List.rev !order) in
  Metrics.note_batch t.metrics ~size:!n ~unique:(Array.length uniques);
  let responses =
    Parallel.Pool.map t.pool (fun cell -> eval_job t (List.hd (List.rev !cell))) uniques
  in
  (* Successful evaluations feed the warm tiers — once per unique key,
     before delivery, so a crash right after the reply is visible can
     still replay (journal) or re-read (store) the record. *)
  (match t.cache with
  | None -> ()
  | Some cache ->
    Array.iteri
      (fun i cell ->
        let resp = responses.(i) in
        if P.is_ok resp then begin
          let key = (List.hd (List.rev !cell)).key in
          if not (Parallel.Lru.mem cache key) then begin
            Parallel.Lru.add cache key resp;
            let value = P.response_to_string resp in
            (match t.journal with
            | None -> ()
            | Some j -> (
              match Journal.append j ~key ~value with
              | Ok () -> Metrics.incr_journal_appended t.metrics
              | Error _ -> ()));
            match t.store with
            | None -> ()
            | Some store ->
              (* The store dedupes on key internally, so a record
                 another shard already published is not re-written. *)
              ignore (Store.add store ~key ~value)
          end
        end)
      uniques);
  (* Bounded journal: past the byte budget, rewrite it down to the keys
     the tier-1 cache still holds — evicted and superseded records are
     exactly the ones a replay would no longer want.  Dispatchers race
     here at worst into back-to-back compactions; the journal lock
     serialises them and each is counted. *)
  (match (t.journal, t.cfg.journal_max_bytes, t.cache) with
  | Some j, Some max_bytes, Some cache when Journal.size_bytes j > max_bytes
    -> (
      match Journal.compact j ~live:(fun k -> Parallel.Lru.mem cache k) with
      | Ok _ -> Metrics.incr_compactions t.metrics
      | Error _ -> ())
  | _ -> ());
  Array.iteri
    (fun i cell -> List.iter (fun j -> deliver t j responses.(i)) (List.rev !cell))
    uniques;
  (* Brownout hysteresis: three consecutive rounds ending with the
     queue above 3/4 of capacity switch the forced-fast mode on; three
     at or below 1/4 switch it off.  In between, both streaks reset. *)
  if t.cfg.brownout then begin
    let depth = Shards.length t.shards in
    let cap = Shards.capacity t.shards in
    if 4 * depth >= 3 * cap then begin
      Atomic.set t.low_rounds 0;
      if Atomic.fetch_and_add t.high_rounds 1 + 1 >= 3 then
        Metrics.set_brownout t.metrics true
    end
    else if 4 * depth <= cap then begin
      Atomic.set t.high_rounds 0;
      if Atomic.fetch_and_add t.low_rounds 1 + 1 >= 3 then
        Metrics.set_brownout t.metrics false
    end
    else begin
      Atomic.set t.high_rounds 0;
      Atomic.set t.low_rounds 0
    end
  end

let dispatcher_loop t shard =
  let rec loop () =
    match Shards.pop t.shards ~shard with
    | None -> ()
    | Some (job, src) ->
      if src <> shard then Metrics.incr_steals t.metrics;
      dispatch_round t ~src job;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection threads                                                  *)

let snapshot t =
  Metrics.snapshot ~dispatchers:t.cfg.dispatchers t.metrics
    ~queue_depth:(Shards.length t.shards)

let health_of t : P.health_rep =
  let draining = Atomic.get t.draining in
  let degraded = Metrics.brownout_active t.metrics in
  let s = snapshot t in
  {
    healthy = not (draining || degraded);
    draining;
    h_mode =
      (if draining then P.Mode_draining
       else if degraded then P.Mode_degraded
       else P.Mode_healthy);
    h_uptime_s = s.P.uptime_s;
    h_queue_depth = s.P.queue_depth;
    h_capacity = Shards.capacity t.shards;
    h_workers = t.cfg.jobs;
  }

let stats t = snapshot t
let health = health_of

let wait_reply job =
  Mutex.lock job.jm;
  while job.reply = None do
    Condition.wait job.jc job.jm
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.jm;
  r

let handle_line t line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else
    match P.parse_request_v ~line:1 trimmed with
    | `Malformed e ->
      Metrics.incr_malformed t.metrics;
      Some (P.Failed e)
    | `Unknown_verb verb ->
      (* Version skew is not an error: tell the client which verb we
         refused and which protocol we speak, and keep the session up. *)
      Metrics.incr_malformed t.metrics;
      Some (P.Unsupported { verb; server_version = P.version })
    | `Request ((P.Stats | P.Health | P.Hello) as r) ->
      (* Control-plane requests bypass the queue: they must answer even
         when the data plane is saturated — that is their whole point. *)
      Some
        (match r with
        | P.Stats -> P.Ok_stats (stats t)
        | P.Hello ->
          P.Ok_hello
            {
              P.server_version = P.version;
              server_min_version = P.min_version;
              server_verbs = P.verbs;
            }
        | _ -> P.Ok_health (health_of t))
    | `Request request -> (
      let key = P.request_key request in
      (* Tier 1, the warm response cache: a hit answers at admission
         without touching the queue — this is what makes a freshly
         restarted daemon useful within milliseconds. *)
      match
        Option.bind t.cache (fun cache -> Parallel.Lru.find cache key)
      with
      | Some resp ->
        Metrics.incr_accepted t.metrics;
        Metrics.incr_warm_hits t.metrics;
        Metrics.incr_served t.metrics;
        Metrics.observe_latency t.metrics 0.;
        Some resp
      | None ->
      (* Tier 2, the shared solution store: an LRU miss consults the
         fleet's persistent store before solving — a solution computed
         by any shard, in any past life, is a disk read here.  Hits are
         promoted back into tier 1. *)
      match
        match t.store with
        | None -> None
        | Some store -> (
          match Store.find store key with
          | None ->
            Metrics.incr_store_misses t.metrics;
            None
          | Some value -> (
            match P.parse_response value with
            | Ok resp when P.is_ok resp -> Some resp
            | Ok _ | Error _ -> None))
      with
      | Some resp ->
        Metrics.incr_accepted t.metrics;
        Metrics.incr_store_hits t.metrics;
        Metrics.incr_served t.metrics;
        Metrics.observe_latency t.metrics 0.;
        Option.iter (fun cache -> Parallel.Lru.add cache key resp) t.cache;
        Some resp
      | None ->
      (* Deadline-aware admission: when the per-request budget cannot
         be met at the current depth (predicted wait = service EWMA x
         queued-ahead / workers), shedding now is strictly kinder than
         queueing work that is doomed to [timeout] — the client learns
         immediately and the queue stays available for requests that
         can still make it. *)
      let doomed =
        match t.cfg.timeout with
        | None -> None
        | Some budget ->
          let ewma = Metrics.service_ewma t.metrics in
          if ewma <= 0. then None
          else
            let depth = Shards.length t.shards in
            let wait =
              ewma *. float_of_int (depth + 1) /. float_of_int t.cfg.jobs
            in
            if wait > budget then Some (wait, budget) else None
      in
      match doomed with
      | Some (wait, budget) ->
        Metrics.incr_accepted t.metrics;
        Metrics.incr_shed t.metrics;
        Some (P.Shed { wait; budget })
      | None ->
      let job =
        {
          request;
          key;
          admitted = Parallel.Clock.now ();
          jm = Mutex.create ();
          jc = Condition.create ();
          reply = None;
        }
      in
      Some
        (match Shards.try_push t.shards ~key:job.key job with
        | Queue.Enqueued ->
          Metrics.incr_accepted t.metrics;
          Metrics.incr_inflight t.metrics;
          wait_reply job
        | Queue.Overloaded ->
          Metrics.incr_rejected t.metrics;
          P.Overloaded
            {
              depth = Shards.length t.shards;
              capacity = Shards.capacity t.shards;
            }
        | Queue.Closed ->
          Metrics.incr_rejected t.metrics;
          P.Failed (E.Io_error "server is draining")))

let connection_loop t id fd =
  (* Raw-descriptor line I/O (Wire): EINTR retried, EPIPE/reset typed,
     partial lines reassembled across arbitrary packet boundaries.  A
     peer that vanishes mid-request or before its response is written
     is a hangup, not a thread-killing exception. *)
  let reader = Wire.reader fd in
  let rec loop () =
    match Wire.read_line reader with
    | Wire.Line line -> (
      match handle_line t line with
      | None -> loop ()
      | Some resp -> (
        match Wire.write_line fd (P.response_to_string resp) with
        | Ok () -> loop ()
        | Error `Closed -> Metrics.incr_hangups t.metrics))
    | Wire.Eof -> ()
    | Wire.Eof_mid_line -> Metrics.incr_hangups t.metrics
    | Wire.Deadline -> loop ()
  in
  loop ();
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.conns_m;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Poll-accept so [stop] can end the loop with a flag instead of racing
   a close against a blocked [accept]. *)
let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
          Mutex.lock t.conns_m;
          let id = t.next_conn in
          t.next_conn <- id + 1;
          let thread = Thread.create (fun () -> connection_loop t id fd) () in
          Hashtbl.add t.conns id (fd, thread);
          Mutex.unlock t.conns_m;
          loop ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
        | exception Unix.Unix_error _ -> loop ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let bind_socket address =
  match address with
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, address)
  | Tcp (host, port) ->
    let addr = resolve_host host in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp (host, p)
      | _ -> address
    in
    (fd, bound)

let start cfg =
  if
    cfg.jobs < 1 || cfg.dispatchers < 1 || cfg.queue_capacity < 1
    || cfg.max_batch < 1
  then
    E.invalid
      "Server.start: jobs, dispatchers, queue_capacity and max_batch must be \
       >= 1"
  else begin
    (* A client vanishing mid-response must not kill the daemon. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    match bind_socket cfg.address with
    | exception Unix.Unix_error (err, fn, arg) ->
      Error
        (E.Io_error
           (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)))
    | exception Not_found -> Error (E.Io_error "cannot resolve host")
    | listen_fd, bound -> (
      let metrics = Metrics.create () in
      let fail_boot e =
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        Error e
      in
      (* Open the journal and the tier-2 store before serving: a bad
         path must fail the boot, and replayed responses must be warm
         before the first connection is accepted. *)
      let journal_setup =
        match cfg.journal with
        | None -> Ok (None, [])
        | Some path -> (
          match Journal.open_ path with
          | Error e -> Error e
          | Ok (j, records) -> Ok (Some j, records))
      in
      match journal_setup with
      | Error e -> fail_boot e
      | Ok (journal, records) -> (
      let store_setup =
        match cfg.store with
        | None -> Ok None
        | Some path -> (
          match Store.open_ path with
          | Error e ->
            Option.iter Journal.close journal;
            Error e
          | Ok s -> Ok (Some s))
      in
      match store_setup with
      | Error e -> fail_boot e
      | Ok store ->
      (* The tier-1 cache exists whenever either durable tier does.
         With a store attached, every capacity eviction is a demotion:
         the record still lives in tier 2, and the counter says how
         much of the working set no longer fits hot. *)
      let cache =
        if journal = None && store = None then None
        else
          let on_evict =
            if store = None then None
            else Some (fun _ _ -> Metrics.incr_store_demoted metrics)
          in
          Some
            (Parallel.Lru.create ~capacity:response_cache_capacity ?on_evict
               ())
      in
      (* Oldest record first, so the most recently journaled entries
         end up most recently used. *)
      let replayed =
        match cache with
        | None -> 0
        | Some cache ->
          List.fold_left
            (fun n (key, value) ->
              match P.parse_response value with
              | Ok resp when P.is_ok resp ->
                Parallel.Lru.add cache key resp;
                n + 1
              | Ok _ | Error _ -> n)
            0 records
      in
      let t =
        {
          cfg;
          bound;
          shards =
            Shards.create ~shards:cfg.dispatchers
              ~capacity:cfg.queue_capacity;
          metrics;
          pool = Parallel.Pool.create ~jobs:cfg.jobs ();
          cache;
          journal;
          store;
          high_rounds = Atomic.make 0;
          low_rounds = Atomic.make 0;
          listen_fd;
          draining = Atomic.make false;
          listener = None;
          dispatchers = [];
          conns = Hashtbl.create 16;
          conns_m = Mutex.create ();
          next_conn = 0;
          stop_m = Mutex.create ();
          stopped = false;
        }
      in
      Metrics.add_journal_replayed t.metrics replayed;
      t.dispatchers <-
        List.init cfg.dispatchers (fun i ->
            Thread.create (fun () -> dispatcher_loop t i) ());
      t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
      Ok t))
  end

let address t = t.bound

let stop t =
  Mutex.lock t.stop_m;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_m;
  if not already then begin
    (* 1. Stop admitting: no new connections, no new jobs. *)
    Atomic.set t.draining true;
    Option.iter Thread.join t.listener;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Shards.close t.shards;
    (* 2. Drain: every dispatcher answers everything already admitted
       (its own shard or stolen) before its pop returns None. *)
    List.iter Thread.join t.dispatchers;
    t.dispatchers <- [];
    Parallel.Pool.shutdown t.pool;
    (* 3. Wake the connection threads (blocked readers see EOF) and
       wait them out. *)
    let conns =
      Mutex.lock t.conns_m;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_m;
      l
    in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, thread) -> Thread.join thread) conns;
    Option.iter Journal.close t.journal;
    Option.iter Store.close t.store;
    match t.bound with
    | Unix_socket path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

(* Test hook: the warm cache's contents in LRU-to-MRU order, rendered —
   what a journal replay is checked against. *)
let cache_dump t =
  match t.cache with
  | None -> []
  | Some cache ->
    List.rev
      (Parallel.Lru.fold cache ~init:[] ~f:(fun acc key resp ->
           (key, P.response_to_string resp) :: acc))
