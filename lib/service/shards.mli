(** Sharded admission buffer: N bounded queues, one per dispatcher,
    with steal-based rebalancing.

    Each request key is hashed onto a fixed shard ({!shard_of_key}), so
    all duplicates of a request land in the {e same} dispatcher's
    rounds — single-flight dedup and result-cache affinity stay
    shard-local without any cross-dispatcher coordination.  A dispatcher
    whose own shard runs dry steals from the currently longest other
    shard instead of sleeping, so a skewed key distribution cannot
    strand idle dispatchers while one shard backs up.

    Total admission capacity is split evenly across shards; a push is
    [Overloaded] when the {e key's} shard is full, even if other shards
    have room — the bound is per-shard by design, since rebalancing
    happens at the consumer end (stealing), not the producer end.

    {!close} is broadcast-correct: every blocked {!pop} either drains a
    remaining item (its own or stolen) or returns [None] once all shards
    are closed {e and} empty, so no admitted request is dropped and
    every dispatcher terminates. *)

type 'a t

(** [create ~shards ~capacity] builds [shards] queues ([shards >= 1])
    with [max 1 (capacity / shards)] slots each.
    @raise Invalid_argument when [shards < 1] or [capacity < 1]. *)
val create : shards:int -> capacity:int -> 'a t

val shard_count : 'a t -> int

(** [shard_of_key t key] is the shard this key hashes to — stable for
    the lifetime of [t]. *)
val shard_of_key : 'a t -> string -> int

(** [try_push t ~key x] enqueues [x] on [key]'s shard.  Never blocks;
    [Overloaded] when that shard is full, [Closed] after {!close}. *)
val try_push : 'a t -> key:string -> 'a -> Queue.push_result

(** [pop t ~shard] blocks until an item is available somewhere and
    returns [(item, source)] — [source = shard] for an own-shard pop,
    [source <> shard] for a steal from the longest backlog.  [None]
    once the structure is closed and fully drained. *)
val pop : 'a t -> shard:int -> ('a * int) option

(** [try_pop_from t i] dequeues from shard [i] if an item is
    immediately available — used to extend a dispatch round from the
    shard that produced its first job. *)
val try_pop_from : 'a t -> int -> 'a option

(** [close t] rejects all further pushes and wakes every blocked
    {!pop}; remaining items are still drained.  Idempotent. *)
val close : 'a t -> unit

(** Items currently admitted, across all shards. *)
val length : 'a t -> int

val shard_length : 'a t -> int -> int

(** Total capacity: per-shard capacity times the shard count. *)
val capacity : 'a t -> int
