(** Consistent-hash ring: canonical request keys → shard indices.

    The router's placement function.  Every shard contributes [vnodes]
    virtual points to a circle of 64-bit hashes; a key is owned by the
    first shard point at or clockwise-after the key's hash.  Virtual
    nodes smooth the load (each shard's arc is the union of [vnodes]
    independent slices), and the clockwise-successor rule gives the two
    properties the scale-out design leans on:

    - {b affinity}: equal keys always land on the same shard, so the
      shard-local single-flight dedup, LRU and journal keep full effect
      behind the router — duplicates meet in one process;
    - {b minimal remap}: removing a shard moves {e only} the keys that
      shard owned (its arcs fall to their clockwise successors); every
      other key keeps its shard.  Adding one is symmetric.

    Hashing is FNV-1a (64-bit) with a splitmix64 avalanche finalizer,
    implemented here rather than via [Hashtbl.hash] so the placement is
    a pure function of the byte strings involved — identical in every
    process, on every run, with no string-prefix truncation.  The
    finalizer matters: raw FNV-1a leaves labels differing only in their
    last characters (vnode labels do) clustered on the circle.  Router
    and tests may differ in process, architecture word size is 64-bit
    everywhere we build. *)

type t

(** [create ~vnodes names] builds the ring over the shards [names]
    (index [i] of the result refers to [names.(i)]).  [vnodes] points
    per shard; [vnodes <= 0] or an empty [names] is rejected with
    [Invalid_argument].  Shard names should be stable identities (the
    rendered backend address): equal name sets give bit-identical
    rings in every process. *)
val create : vnodes:int -> string array -> t

(** [lookup t key] is the index of the shard owning [key]. *)
val lookup : t -> string -> int

(** [route t key] is every shard index in ring order starting at the
    owner — the failover order: if the owner is unreachable, the next
    distinct shard clockwise is the one that would own the key were the
    owner removed, so retrying down this list follows exactly the
    minimal-remap placement. *)
val route : t -> string -> int list

(** [remove t i] is the ring without shard [i]'s points; the surviving
    shards keep their original indices {e and} their original points,
    which is what makes the remap minimal.  [Invalid_argument] when
    removing the last shard. *)
val remove : t -> int -> t

(** Number of shards with points on the ring. *)
val shards : t -> int

val vnodes : t -> int

(** The 64-bit hash the ring places with (FNV-1a, splitmix64-mixed) —
    exposed so tests can pin golden values (cross-process determinism
    is a stated property, and a pinned constant is the cheapest
    proof). *)
val hash : string -> int64
