(* Buckets are [2^i, 2^(i+1)) microseconds; 40 buckets cover up to
   ~2^40 us ≈ 12.7 days, far past any request budget. *)
let buckets = 40

type t = {
  accepted : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  timed_out : int Atomic.t;
  failed : int Atomic.t;
  malformed : int Atomic.t;
  batches : int Atomic.t;
  max_batch : int Atomic.t;
  collapsed : int Atomic.t;
  inflight : int Atomic.t;
  steals : int Atomic.t;
  shed : int Atomic.t;
  brownouts : int Atomic.t;
  brownout_active : bool Atomic.t;
  hangups : int Atomic.t;
  warm_hits : int Atomic.t;
  journal_appended : int Atomic.t;
  journal_replayed : int Atomic.t;
  store_hits : int Atomic.t;
  store_misses : int Atomic.t;
  store_demoted : int Atomic.t;
  compactions : int Atomic.t;
  retries : int Atomic.t;
  breaker_opens : int Atomic.t;
  (* EWMA of per-request service time, stored as float bits so a CAS
     loop can update it without a lock.  Admission divides this by the
     worker count to predict queue wait. *)
  service_ewma_bits : int Atomic.t;
  histogram : int Atomic.t array;
  max_us : int Atomic.t;
  started : float;  (* monotonic (Clock.now), not wall time *)
}

let create () =
  {
    accepted = Atomic.make 0;
    served = Atomic.make 0;
    rejected = Atomic.make 0;
    timed_out = Atomic.make 0;
    failed = Atomic.make 0;
    malformed = Atomic.make 0;
    batches = Atomic.make 0;
    max_batch = Atomic.make 0;
    collapsed = Atomic.make 0;
    inflight = Atomic.make 0;
    steals = Atomic.make 0;
    shed = Atomic.make 0;
    brownouts = Atomic.make 0;
    brownout_active = Atomic.make false;
    hangups = Atomic.make 0;
    warm_hits = Atomic.make 0;
    journal_appended = Atomic.make 0;
    journal_replayed = Atomic.make 0;
    store_hits = Atomic.make 0;
    store_misses = Atomic.make 0;
    store_demoted = Atomic.make 0;
    compactions = Atomic.make 0;
    retries = Atomic.make 0;
    breaker_opens = Atomic.make 0;
    service_ewma_bits = Atomic.make (Int64.to_int (Int64.bits_of_float 0.0));
    histogram = Array.init buckets (fun _ -> Atomic.make 0);
    max_us = Atomic.make 0;
    started = Parallel.Clock.now ();
  }

let incr_accepted t = Atomic.incr t.accepted
let incr_served t = Atomic.incr t.served
let incr_rejected t = Atomic.incr t.rejected
let incr_timed_out t = Atomic.incr t.timed_out
let incr_failed t = Atomic.incr t.failed
let incr_malformed t = Atomic.incr t.malformed
let incr_inflight t = Atomic.incr t.inflight
let decr_inflight t = Atomic.decr t.inflight
let incr_steals t = Atomic.incr t.steals
let incr_shed t = Atomic.incr t.shed
let incr_hangups t = Atomic.incr t.hangups
let incr_warm_hits t = Atomic.incr t.warm_hits
let incr_journal_appended t = Atomic.incr t.journal_appended
let incr_store_hits t = Atomic.incr t.store_hits
let incr_store_misses t = Atomic.incr t.store_misses
let incr_store_demoted t = Atomic.incr t.store_demoted
let incr_compactions t = Atomic.incr t.compactions
let incr_retries t = Atomic.incr t.retries
let incr_breaker_opens t = Atomic.incr t.breaker_opens

let add_journal_replayed t n =
  ignore (Atomic.fetch_and_add t.journal_replayed n)

let set_brownout t active =
  (* Count only the off->on edge so [brownouts] is "times we browned
     out", not "rounds spent browned out". *)
  if active && not (Atomic.exchange t.brownout_active true) then
    Atomic.incr t.brownouts
  else if not active then Atomic.set t.brownout_active false

let brownout_active t = Atomic.get t.brownout_active
let steals t = Atomic.get t.steals
let inflight t = Atomic.get t.inflight
let accepted t = Atomic.get t.accepted
let served t = Atomic.get t.served
let timed_out t = Atomic.get t.timed_out
let failed t = Atomic.get t.failed
let rejected t = Atomic.get t.rejected
let collapsed t = Atomic.get t.collapsed
let shed t = Atomic.get t.shed
let brownouts t = Atomic.get t.brownouts
let hangups t = Atomic.get t.hangups
let warm_hits t = Atomic.get t.warm_hits
let store_hits t = Atomic.get t.store_hits
let store_misses t = Atomic.get t.store_misses
let store_demoted t = Atomic.get t.store_demoted
let compactions t = Atomic.get t.compactions
let retries t = Atomic.get t.retries
let breaker_opens t = Atomic.get t.breaker_opens

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v <= cur then ()
  else if Atomic.compare_and_set cell cur v then ()
  else atomic_max cell v

let note_batch t ~size ~unique =
  Atomic.incr t.batches;
  atomic_max t.max_batch size;
  if size > unique then
    ignore (Atomic.fetch_and_add t.collapsed (size - unique))

let bucket_of_us us =
  let rec go i bound = if us < bound || i = buckets - 1 then i else go (i + 1) (bound * 2) in
  go 0 2

let observe_latency t seconds =
  let us = int_of_float (Float.max 0. (seconds *. 1e6)) in
  Atomic.incr t.histogram.(bucket_of_us us);
  atomic_max t.max_us us

(* EWMA with alpha = 0.2: heavy enough on history to ride out one odd
   request, light enough to track a regime change within ~10 requests.
   First observation seeds the average directly. *)
let rec observe_service t seconds =
  let old_bits = Atomic.get t.service_ewma_bits in
  let old = Int64.float_of_bits (Int64.of_int old_bits) in
  let next = if old <= 0.0 then seconds else (0.8 *. old) +. (0.2 *. seconds) in
  let next_bits = Int64.to_int (Int64.bits_of_float next) in
  if not (Atomic.compare_and_set t.service_ewma_bits old_bits next_bits) then
    observe_service t seconds

let service_ewma t =
  Int64.float_of_bits (Int64.of_int (Atomic.get t.service_ewma_bits))

(* The last bucket is an overflow bucket: it holds everything at or
   past the last finite boundary, so it has no meaningful upper bound.
   Quantiles landing there saturate at this value (read: ">= 2^39 us")
   instead of fabricating a 2^40 us "upper bound" no observation ever
   had. *)
let max_tracked_us = 1 lsl (buckets - 1)

(* Upper bound of the bucket holding the q-th observation; 0 on an
   empty histogram, saturated at [max_tracked_us] for the overflow
   bucket. *)
let quantile counts total q =
  if total = 0 then 0
  else
    let target =
      let t = int_of_float (ceil (float_of_int total *. q)) in
      if t < 1 then 1 else if t > total then total else t
    in
    let rec go i seen =
      if i >= buckets then max_tracked_us
      else
        let seen = seen + counts.(i) in
        if seen >= target then
          if i >= buckets - 1 then max_tracked_us else 1 lsl (i + 1)
        else go (i + 1) seen
    in
    go 0 0

let snapshot ?(dispatchers = 1) t ~queue_depth : Protocol.stats_rep =
  let counts = Array.map Atomic.get t.histogram in
  let total = Array.fold_left ( + ) 0 counts in
  let cache = Dls.Lp_model.cache_stats () in
  let resolve = Dls.Lp_model.resolve_stats () in
  {
    accepted = Atomic.get t.accepted;
    served = Atomic.get t.served;
    rejected = Atomic.get t.rejected;
    timed_out = Atomic.get t.timed_out;
    failed = Atomic.get t.failed;
    malformed = Atomic.get t.malformed;
    batches = Atomic.get t.batches;
    max_batch = Atomic.get t.max_batch;
    collapsed = Atomic.get t.collapsed;
    cache_hits = cache.Parallel.Lru.hits;
    cache_misses = cache.Parallel.Lru.misses;
    repair_probes = resolve.Dls.Lp_model.probes;
    repair_wins = resolve.Dls.Lp_model.repair_wins;
    repair_pivots = resolve.Dls.Lp_model.repair_pivots;
    dispatchers;
    steals = Atomic.get t.steals;
    shed = Atomic.get t.shed;
    brownouts = Atomic.get t.brownouts;
    hangups = Atomic.get t.hangups;
    warm_hits = Atomic.get t.warm_hits;
    journal_appended = Atomic.get t.journal_appended;
    journal_replayed = Atomic.get t.journal_replayed;
    store_hits = Atomic.get t.store_hits;
    store_misses = Atomic.get t.store_misses;
    store_demoted = Atomic.get t.store_demoted;
    compactions = Atomic.get t.compactions;
    queue_depth;
    inflight = Atomic.get t.inflight;
    p50_us = quantile counts total 0.50;
    p90_us = quantile counts total 0.90;
    p99_us = quantile counts total 0.99;
    max_us = Atomic.get t.max_us;
    uptime_s = Parallel.Clock.elapsed_s ~since:t.started;
  }
