(** Blocking client for the {!Server} wire protocol: one connection,
    synchronous request/response, typed errors — the building block of
    [dls client], [dls loadgen], {!Resilient} and the service bench.

    Built on {!Wire}, so requests and responses survive arbitrary
    packet fragmentation, [EINTR] is retried, and a vanished server
    surfaces as a typed error instead of an exception.  This client is
    deliberately naive about failures — one attempt, no reconnect; that
    is {!Resilient}'s job.

    Transport failures surface as [Error (Io_error _)]; a well-formed
    but negative server answer ([overloaded], [timeout], [shed],
    [error ...]) is [Ok response] — the request/response cycle worked,
    the payload just says no. *)

type t

(** Low-level failure of one request/response cycle. *)
type transport_error = [ `Closed | `Closed_mid_line | `Deadline ]

val transport_error_to_string : transport_error -> string

(** [connect address] opens one connection. *)
val connect : Server.address -> (t, Dls.Errors.t) result

(** [request ?deadline_s t req] sends the canonical line for [req] and
    reads the response line, waiting at most [deadline_s] seconds
    (forever when omitted). *)
val request :
  ?deadline_s:float -> t -> Protocol.request -> (Protocol.response, Dls.Errors.t) result

(** [request_raw t line] sends [line] verbatim — for probing the server
    with malformed input. *)
val request_raw :
  ?deadline_s:float -> t -> string -> (Protocol.response, Dls.Errors.t) result

(** [request_line t line] is the undecoded cycle: send [line], return
    the raw reply line.  {!Resilient} inspects raw bytes for transit
    corruption before parsing, so it needs the reply pre-parse. *)
val request_line :
  ?deadline_s:float -> t -> string -> (string, transport_error) result

(** [close t] closes the connection.  Idempotent. *)
val close : t -> unit

(** [with_client address f] connects, runs [f], closes (also on
    exception). *)
val with_client : Server.address -> (t -> 'a) -> ('a, Dls.Errors.t) result
