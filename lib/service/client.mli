(** Blocking client for the {!Server} wire protocol: one connection,
    synchronous request/response, typed errors — the building block of
    [dls client], [dls loadgen] and the service bench.

    Transport failures surface as [Error (Io_error _)]; a well-formed
    but negative server answer ([overloaded], [timeout], [error ...]) is
    [Ok response] — the request/response cycle worked, the payload just
    says no. *)

type t

(** [connect address] opens one connection. *)
val connect : Server.address -> (t, Dls.Errors.t) result

(** [request t req] sends the canonical line for [req] and reads the
    response line. *)
val request : t -> Protocol.request -> (Protocol.response, Dls.Errors.t) result

(** [request_raw t line] sends [line] verbatim — for probing the server
    with malformed input. *)
val request_raw : t -> string -> (Protocol.response, Dls.Errors.t) result

(** [close t] closes the connection.  Idempotent. *)
val close : t -> unit

(** [with_client address f] connects, runs [f], closes (also on
    exception). *)
val with_client : Server.address -> (t -> 'a) -> ('a, Dls.Errors.t) result
