(** Shared persistent solution store — cache tier 2.

    Tier 1 is each shard's in-memory response LRU; this module is the
    tier below it: a single file of {!Journal}-format CRC-checked
    records (canonical request key → rendered response line) that {e
    every} shard of a fleet opens, consults on an LRU miss before
    solving, and appends freshly computed solutions to.  Because keys
    are canonical request lines and evaluations are pure, a record
    written by one shard is the bit-identical answer any other shard
    would have computed — so a solution computed once, anywhere, is a
    disk read everywhere else, across shard restarts and ring reshapes.

    Unlike the journal (a replay-once append log owned by one daemon),
    the store is {b random access} and {b shared}:

    - an in-memory index maps each key to its record's byte position;
      {!find} seeks and reads just that record, re-verifying its CRC;
    - {!find} first {e refreshes}: records appended by other handles —
      including other processes — since the last look are absorbed by
      scanning only the new tail, and a swapped inode (another process
      ran {!compact}) triggers a clean reopen;
    - {!add} appends under an OS file lock (plus a process-wide mutex,
      since POSIX locks do not exclude within one process), so
      concurrent writers cannot tear each other's records; a key
      already present is {e not} re-appended — the store holds one
      record per key modulo races, and duplicate records are harmless
      (last wins in every reader);
    - {!compact} rewrites the file keeping the latest record per key
      (optionally filtered by [live]), swapping it in by rename so a
      crash leaves a valid store.

    A torn or corrupt record is never served: the scanner stops at the
    first bad record exactly like the journal replay, and {!find}
    re-checks the CRC on every read.  A torn tail is repaired at the
    next {!add}: under the exclusive file lock the writer truncates the
    file back to the last good record boundary before appending, so new
    records never land beyond a tear where no scanner would reach
    them. *)

type t

type stats = {
  hits : int;  (** {!find} probes that returned a record *)
  misses : int;  (** {!find} probes that found nothing *)
  appended : int;  (** records appended through this handle *)
  compactions : int;  (** {!compact} runs through this handle *)
}

(** [open_ ?sync path] opens (creating if absent) the store and indexes
    its valid record prefix.  With [~sync:true] (default false) every
    {!add} is followed by [fsync]. *)
val open_ : ?sync:bool -> string -> (t, Dls.Errors.t) result

(** [find t key] is the stored response line for [key], or [None].
    Absorbs other writers' appends (and compactions) first; the
    returned value was CRC-verified on this very read. *)
val find : t -> string -> string option

(** [add t ~key ~value] makes [key → value] durable unless the key is
    already stored.  [key] and [value] must be newline-free.  Truncates
    any torn tail left by a crashed writer before appending. *)
val add : t -> key:string -> value:string -> (unit, Dls.Errors.t) result

(** [mem t key] probes the index without reading or counting. *)
val mem : t -> string -> bool

(** Number of distinct keys indexed. *)
val length : t -> int

val size_bytes : t -> int

(** [compact t ()] rewrites the store keeping the latest record of
    every key [live] accepts (default: keep all keys — compaction then
    only drops superseded duplicates and any torn tail).  Returns
    [(bytes_before, bytes_after)]. *)
val compact :
  t -> ?live:(string -> bool) -> unit -> (int * int, Dls.Errors.t) result

val stats : t -> stats
val close : t -> unit
