(* Append-only checksummed journal.  See journal.mli for the record
   format and the truncated-tail recovery contract. *)

module E = Dls.Errors

(* Table-driven CRC-32, reflected polynomial 0xEDB88320 (the IEEE
   variant used by gzip/zlib).  Good enough to catch torn writes and
   bit rot; this is an integrity check, not an authenticity one. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let payload_crc ~key ~value = crc32 (key ^ "\n" ^ value)

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  sync : bool;
  lock : Mutex.t;
  mutable appended : int;
  mutable compactions : int;
  mutable closed : bool;
}

let render ~key ~value =
  Printf.sprintf "rec %08lx %d %d\n%s\n%s\n" (payload_crc ~key ~value)
    (String.length key) (String.length value) key value

(* Replay: scan [contents], returning the valid records and the byte
   offset of the first bad (or absent) record.  Boundaries are derived
   from the lengths in each header, so a single bad record makes
   everything after it unreachable — we stop there by design. *)
let scan contents =
  let len = String.length contents in
  let records = ref [] in
  let pos = ref 0 in
  let good = ref 0 in
  let bad = ref false in
  while (not !bad) && !pos < len do
    match String.index_from_opt contents !pos '\n' with
    | None -> bad := true
    | Some eol -> (
        let header = String.sub contents !pos (eol - !pos) in
        match String.split_on_char ' ' header with
        | [ "rec"; crc_hex; klen_s; vlen_s ] -> (
            match
              ( int_of_string_opt ("0x" ^ crc_hex),
                int_of_string_opt klen_s,
                int_of_string_opt vlen_s )
            with
            | Some crc, Some klen, Some vlen
              when klen >= 0 && vlen >= 0
                   && eol + 1 + klen + 1 + vlen + 1 <= len
                   && contents.[eol + 1 + klen] = '\n'
                   && contents.[eol + 1 + klen + 1 + vlen] = '\n' ->
                let key = String.sub contents (eol + 1) klen in
                let value = String.sub contents (eol + 1 + klen + 1) vlen in
                if Int32.of_int crc = payload_crc ~key ~value then begin
                  records := (key, value) :: !records;
                  pos := eol + 1 + klen + 1 + vlen + 1;
                  good := !pos
                end
                else bad := true
            | _ -> bad := true)
        | _ -> bad := true)
  done;
  (List.rev !records, !good)

let open_ ?(sync = false) path =
  match
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let size = (Unix.fstat fd).Unix.st_size in
    let contents =
      let b = Bytes.create size in
      let rec fill off =
        if off < size then
          match Unix.read fd b off (size - off) with
          | 0 -> off
          | n -> fill (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off
        else off
      in
      let got = fill 0 in
      Bytes.sub_string b 0 got
    in
    let records, good = scan contents in
    if good < String.length contents then Unix.ftruncate fd good;
    ignore (Unix.lseek fd good Unix.SEEK_SET);
    ( {
        path;
        fd;
        sync;
        lock = Mutex.create ();
        appended = 0;
        compactions = 0;
        closed = false;
      },
      records )
  with
  | pair -> Ok pair
  | exception Unix.Unix_error (e, _, _) ->
      Error (E.Io_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let append t ~key ~value =
  if String.contains key '\n' || String.contains value '\n' then
    Error (E.Io_error "journal: record contains a newline")
  else begin
    Mutex.lock t.lock;
    let result =
      if t.closed then Error (E.Io_error "journal: closed")
      else
        let line = render ~key ~value in
        let bytes = Bytes.of_string line in
        let len = Bytes.length bytes in
        let rec write off =
          if off >= len then Ok ()
          else
            match Unix.write t.fd bytes off (len - off) with
            | n -> write (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
            | exception Unix.Unix_error (e, _, _) ->
                Error (E.Io_error ("journal: " ^ Unix.error_message e))
        in
        match write 0 with
        | Ok () ->
            if t.sync then Unix.fsync t.fd;
            t.appended <- t.appended + 1;
            Ok ()
        | Error _ as e -> e
    in
    Mutex.unlock t.lock;
    result
  end

let appended t = t.appended
let compactions t = t.compactions

let size_bytes t =
  Mutex.lock t.lock;
  let size =
    if t.closed then 0
    else try (Unix.fstat t.fd).Unix.st_size with Unix.Unix_error _ -> 0
  in
  Mutex.unlock t.lock;
  size

(* Read the whole file through [fd]. *)
let read_all fd =
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let b = Bytes.create size in
  let rec fill off =
    if off < size then
      match Unix.read fd b off (size - off) with
      | 0 -> off
      | n -> fill (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off
    else off
  in
  let got = fill 0 in
  Bytes.sub_string b 0 got

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec write off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  write 0

(* Rewrite the journal keeping only the latest record of each key that
   [live] accepts, in the order of each key's last append.  The new
   contents go to a sibling temp file which is renamed over the journal
   — a crash mid-compaction leaves either the old file or the new one,
   both valid.  Serialised against [append] by the same lock, so no
   record can land between the read and the swap. *)
let compact t ~live =
  Mutex.lock t.lock;
  let result =
    if t.closed then Error (E.Io_error "journal: closed")
    else
      match
        let contents = read_all t.fd in
        let records, _good = scan contents in
        (* Last occurrence per key wins; emit in last-append order. *)
        let last = Hashtbl.create 64 in
        List.iteri (fun i (k, v) -> Hashtbl.replace last k (i, v)) records;
        let kept =
          Hashtbl.fold
            (fun k (i, v) acc -> if live k then (i, k, v) :: acc else acc)
            last []
        in
        let kept = List.sort (fun (a, _, _) (b, _, _) -> compare a b) kept in
        let b = Buffer.create 4096 in
        List.iter
          (fun (_, k, v) -> Buffer.add_string b (render ~key:k ~value:v))
          kept;
        let tmp = t.path ^ ".compact" in
        let tmp_fd =
          Unix.openfile tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        write_all tmp_fd (Buffer.contents b);
        if t.sync then Unix.fsync tmp_fd;
        Unix.rename tmp t.path;
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        ignore (Unix.lseek tmp_fd 0 Unix.SEEK_END);
        t.fd <- tmp_fd;
        t.compactions <- t.compactions + 1;
        (String.length contents, Buffer.length b)
      with
      | sizes -> Ok sizes
      | exception Unix.Unix_error (e, _, _) ->
          Error (E.Io_error ("journal compact: " ^ Unix.error_message e))
  in
  Mutex.unlock t.lock;
  result

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.lock

(* The record format is shared with {!Store}, which generalises this
   append-only log into a random-access store. *)
let render_record = render
let scan_string = scan
