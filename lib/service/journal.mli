(** Crash-safe append-only journal of canonical-key → response records.

    The daemon's warm state — the LRU of canonical request keys to
    rendered responses — used to live only in memory, so a restart
    served every request cold.  A journal makes that state durable the
    cheapest way possible: every freshly computed record is appended to
    a flat file, and on boot {!open_} replays whatever prefix of the
    file survives into the cache.

    {b Record format} (all byte counts exact, keys and values are the
    protocol's canonical single-line renderings):

    {v rec <crc32-hex> <klen> <vlen>
<key bytes>
<value bytes>
v}

    The CRC-32 covers [key ^ "\n" ^ value].  A record is accepted only
    if the header parses, both payloads are present in full with their
    terminators, and the checksum matches.

    {b Truncated-tail tolerance}: a crash mid-append leaves a partial
    or corrupt final record.  {!open_} replays records until the first
    bad one, truncates the file back to the last good boundary, and
    carries on — a torn tail costs at most the records after it, never
    the journal.  Corruption {e before} the tail also stops the replay
    at that point (everything after an unreadable record is
    unreachable, since record boundaries are length-derived). *)

type t

(** [open_ ?sync path] opens (creating if absent) the journal at
    [path], replays its valid prefix, truncates any bad tail, and
    returns the handle plus the replayed [(key, value)] pairs in append
    order — oldest first, so feeding them to an LRU in order leaves the
    most recently appended records also most recently used.  With
    [~sync:true] (default [false]) every {!append} is followed by
    [fsync]. *)
val open_ : ?sync:bool -> string -> (t * (string * string) list, Dls.Errors.t) result

(** [append t ~key ~value] durably adds one record.  [key] and [value]
    must be newline-free (canonical protocol lines are).  Serialised
    internally; safe to call from several threads. *)
val append : t -> key:string -> value:string -> (unit, Dls.Errors.t) result

(** Number of records appended through this handle (excludes replay). *)
val appended : t -> int

(** Current journal size in bytes (0 after {!close}). *)
val size_bytes : t -> int

(** [compact t ~live] rewrites the journal, keeping only the {e
    latest} record of every key that [live] accepts — superseded
    appends and keys the caller no longer cares about (evicted cache
    entries) are dropped.  Kept records stay in last-append order, so a
    replay reproduces the same LRU recency.  The rewrite goes to a
    sibling temp file renamed over the journal: a crash mid-compaction
    leaves either the old journal or the new one, never a torn mix.
    Serialised against {!append} internally.  Returns
    [(bytes_before, bytes_after)]. *)
val compact : t -> live:(string -> bool) -> (int * int, Dls.Errors.t) result

(** Number of {!compact} runs completed through this handle. *)
val compactions : t -> int

val close : t -> unit

(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a string — exposed
    for tests that corrupt records deliberately. *)
val crc32 : string -> int32

(** The shared record codec — {!Store} generalises this journal's
    on-disk format into a random-access store, and reuses these rather
    than re-deriving the framing.  [render_record] is the exact byte
    sequence {!append} writes; [scan_string s] parses the valid record
    prefix of [s], returning the [(key, value)] pairs in order plus the
    byte offset of the first bad (or absent) record. *)
val render_record : key:string -> value:string -> string

val scan_string : string -> (string * string) list * int
