(** Deterministic fault-injecting socket proxy — the network's
    counterpart of {!Dls.Faults}.

    The proxy sits between a client and a real {!Server}, relaying the
    line protocol request by request, and injects faults from a {e
    plan}: a finite set of perturbations keyed by [(connection index,
    request index)], where connections are numbered in accept order and
    requests in line order within their connection.  Keying by
    connection/request — never by time or by server configuration —
    makes a plan replayable and jobs-invariant, exactly like a
    {!Dls.Faults} plan: the same plan against the same client produces
    the same fault at the same point of the conversation, whatever the
    daemon's [--jobs] or the machine's speed.

    Fault semantics, per kind:
    - [Drop]: the request line is read and discarded — the upstream
      never sees it, the client gets no reply (its deadline fires);
    - [Delay s]: the reply is held for [s] seconds before delivery;
    - [Stall]: the proxy stops relaying this connection without closing
      it — the client's deadline fires against a live-but-dead peer;
    - [Truncate]: only a prefix of the reply is written, without the
      line terminator, and the connection is closed mid-line;
    - [Garble_req]: control bytes (0x01) overwrite part of the request
      before forwarding — the server sees a line that cannot be the
      canonical rendering it would have received, answers [error
      parse ...], and a resilient client treats that as transit damage;
    - [Garble_resp]: control bytes overwrite part of the reply —
      detectable because canonical responses are printable ASCII;
    - [Disconnect]: the connection is closed at a line boundary after
      reading the request, before any reply.

    Connections beyond the plan are relayed untouched. *)

type fault =
  | Drop
  | Delay of float
  | Stall
  | Truncate
  | Garble_req
  | Garble_resp
  | Disconnect

type spec = { conn : int; req : int; fault : fault }

type plan = spec list

val fault_to_string : fault -> string

(** {1 Text format}

    One fault per line — [conn C req R <fault>] where [<fault>] is
    [drop], [stall], [truncate], [garble-req], [garble-resp],
    [disconnect] or [delay S] — with [#] comments and blank lines
    ignored:

    {v
    # dls chaos v1
    conn 0 req 1 delay 0.005
    conn 2 req 0 garble-resp
    v} *)

val to_string : plan -> string

(** [of_string s] parses a plan; malformed input yields a typed
    {!Dls.Errors.Parse_error} with 1-based line/column positions, never
    an exception. *)
val of_string : string -> (plan, Dls.Errors.t) result

(** [gen ~seed ~conns ~severity] draws a replayable plan over [conns]
    connections.  [severity] in [[0, 1]] scales the fraction of faulted
    connections; every fourth connection (index [3 mod 4]) is always
    left clean, so a client whose retry budget covers a handful of
    fresh connections is guaranteed to land on an unfaulted one.
    Deterministic in its arguments alone (hash-seeded, no RNG state). *)
val gen : seed:int -> conns:int -> severity:float -> plan

type t

(** [start ~listen ~upstream plan] binds [listen] and relays every
    accepted connection to [upstream] under [plan].  Like
    {!Server.start}, [Tcp (_, 0)] picks a free port. *)
val start :
  listen:Server.address -> upstream:Server.address -> plan -> (t, Dls.Errors.t) result

(** The bound listen address, with the actual port. *)
val address : t -> Server.address

(** [stop t] closes the listener and every relayed connection. *)
val stop : t -> unit
