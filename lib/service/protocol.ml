module Q = Numeric.Rational
module T = Dls.Text_format
module E = Dls.Errors

type order = Fifo | Lifo

type solve_req = {
  s_platform : Dls.Platform.t;
  s_order : order;
  s_model : Dls.Lp_model.model;
  s_fast : bool;
  s_load : Q.t option;
}

type replan = Replan_none | Replan_auto | Replan_policy of Dls.Replan.policy

type simulate_req = {
  m_platform : Dls.Platform.t;
  m_order : order;
  m_items : int;
  m_faults : Dls.Faults.plan option;
  m_replan : replan;
}

type multi_mode = Steady | Batch

type multi_req = {
  u_platform : Dls.Platform.t;
  u_workload : Dls.Workload.t;
  u_mode : multi_mode;
  u_depth : int option;
}

type request =
  | Solve of solve_req
  | Solve_multi of multi_req
  | Simulate of simulate_req
  | Check of Dls.Platform.t
  | Stats
  | Health
  | Hello

let version = 2
let min_version = 1

let verbs =
  [ "solve"; "solve-multi"; "simulate"; "check"; "stats"; "health"; "hello" ]

type solve_rep = {
  rho : Q.t;
  sigma1 : int array;
  alpha : Q.t array;
  idle : Q.t array;
  makespan : Q.t option;
}

type simulate_rep = {
  sim_makespan : float;
  lp_makespan : float;
  sim_valid : bool;
  achieved : float option;
  achieved_ratio : float option;
  replanned : string option;
}

type multi_rep = {
  mm_mode : multi_mode;
  mm_value : Q.t;
  mm_throughput : Q.t;
  mm_depth : int option;
  mm_alloc : Q.t array array;
}

type check_rep = { check_ok : bool; violations : int }

type hello_rep = {
  server_version : int;
  server_min_version : int;
  server_verbs : string list;
}

type stats_rep = {
  accepted : int;
  served : int;
  rejected : int;
  timed_out : int;
  failed : int;
  malformed : int;
  batches : int;
  max_batch : int;
  collapsed : int;
  cache_hits : int;
  cache_misses : int;
  repair_probes : int;
  repair_wins : int;
  repair_pivots : int;
  dispatchers : int;
  steals : int;
  shed : int;
  brownouts : int;
  hangups : int;
  warm_hits : int;
  journal_appended : int;
  journal_replayed : int;
  store_hits : int;
  store_misses : int;
  store_demoted : int;
  compactions : int;
  queue_depth : int;
  inflight : int;
  p50_us : int;
  p90_us : int;
  p99_us : int;
  max_us : int;
  uptime_s : float;
}

type health_mode = Mode_healthy | Mode_degraded | Mode_draining

type health_rep = {
  healthy : bool;
  draining : bool;
  h_mode : health_mode;
  h_uptime_s : float;
  h_queue_depth : int;
  h_capacity : int;
  h_workers : int;
}

type response =
  | Ok_solve of solve_rep
  | Ok_multi of multi_rep
  | Ok_simulate of simulate_rep
  | Ok_check of check_rep
  | Ok_stats of stats_rep
  | Ok_health of health_rep
  | Ok_hello of hello_rep
  | Overloaded of { depth : int; capacity : int }
  | Timed_out of { budget : float }
  | Shed of { wait : float; budget : float }
  | Unsupported of { verb : string; server_version : int }
  | Failed of E.t

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Scalar rendering                                                    *)

(* Shortest decimal form that parses back to the same float, so float
   fields survive a render/parse round trip bit-for-bit.  Non-finite
   values break the roundtrip test ([nan <> nan]; the integer shortcut
   misclassifies infinities), so they get explicit canonical spellings —
   which the parse side then rejects with a typed error, keeping
   non-finite values out of the protocol in both directions. *)
let float_str f =
  match Float.classify_float f with
  | Float.FP_nan -> "nan"
  | Float.FP_infinite -> if f > 0.0 then "inf" else "-inf"
  | _ ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else
      let rec go p =
        if p > 17 then Printf.sprintf "%.17g" f
        else
          let s = Printf.sprintf "%.*g" p f in
          if float_of_string s = f then s else go (p + 1)
      in
      go 6

let bool_str b = if b then "true" else "false"

let mode_str = function
  | Mode_healthy -> "healthy"
  | Mode_degraded -> "degraded"
  | Mode_draining -> "draining"
let order_to_string = function Fifo -> "fifo" | Lifo -> "lifo"

let model_to_string = function
  | Dls.Lp_model.One_port -> "one-port"
  | Dls.Lp_model.Two_port -> "two-port"

let replan_to_string = function
  | Replan_none -> "none"
  | Replan_auto -> "auto"
  | Replan_policy p -> Dls.Replan.policy_to_string p

let q_list qs = String.concat "," (List.map Q.to_string (Array.to_list qs))
let int_list is = String.concat "," (List.map string_of_int (Array.to_list is))
let mode_to_string = function Steady -> "steady" | Batch -> "batch"

(* Load-major allocation matrix: rows comma-joined, rows joined by ';'. *)
let alloc_list rows =
  String.concat ";" (List.map q_list (Array.to_list rows))

(* ------------------------------------------------------------------ *)
(* Platform spec: c:w:d,c:w:d — the CLI's compact form, with positions *)

let platform_to_spec p =
  String.concat ","
    (List.init (Dls.Platform.size p) (fun i ->
         let wk = Dls.Platform.get p i in
         Printf.sprintf "%s:%s:%s"
           (Q.to_string wk.Dls.Platform.c)
           (Q.to_string wk.Dls.Platform.w)
           (Q.to_string wk.Dls.Platform.d)))

(* [col] is where [s] starts on the line; sub-token error columns are
   offsets into [s] added to it. *)
let platform_of_spec ?file ~line ~col s =
  let rational ~off txt =
    match Q.of_string txt with
    | q -> Ok q
    | exception _ ->
      E.parse_error ?file ~line ~col:(col + off) "not a rational: %S" txt
  in
  (* split keeping each part's offset in [s], surrounding blanks
     trimmed (offsets adjusted) so "1:2 , 3:4:5" parses; a part left
     empty by the trim is a stray separator, reported at its exact
     position instead of as a generic shape error *)
  let split_offsets sep str =
    let parts = String.split_on_char sep str in
    let _, with_off =
      List.fold_left
        (fun (off, acc) part ->
          (off + String.length part + 1, (off, part) :: acc))
        (0, []) parts
    in
    List.rev_map
      (fun (off, part) ->
        let n = String.length part in
        let i = ref 0 in
        while !i < n && (part.[!i] = ' ' || part.[!i] = '\t') do
          incr i
        done;
        let j = ref (n - 1) in
        while !j >= !i && (part.[!j] = ' ' || part.[!j] = '\t') do
          decr j
        done;
        (off + !i, String.sub part !i (!j - !i + 1)))
      with_off
  in
  let parse_worker i (off, part) =
    match split_offsets ':' part with
    | [ (oc, c); (ow, w); (od, d) ] when c <> "" && w <> "" && d <> "" ->
      let* c = rational ~off:(off + oc) c in
      let* w = rational ~off:(off + ow) w in
      let* d = rational ~off:(off + od) d in
      (match Dls.Platform.worker ~name:(Printf.sprintf "P%d" (i + 1)) ~c ~w ~d () with
      | wk -> Ok wk
      | exception Invalid_argument msg ->
        E.parse_error ?file ~line ~col:(col + off) "%s" msg)
    | fields ->
      if part = "" then
        E.parse_error ?file ~line ~col:(col + off)
          "empty worker spec (stray ',' separator?)"
      else (
        match List.find_opt (fun (_, f) -> f = "") fields with
        | Some (o, _) ->
          E.parse_error ?file ~line ~col:(col + off + o)
            "empty field in worker spec (stray ':' separator?)"
        | None ->
          E.parse_error ?file ~line ~col:(col + off) "expected c:w:d, got %S"
            part)
  in
  let rec collect i acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      let* wk = parse_worker i part in
      collect (i + 1) (wk :: acc) rest
  in
  if String.trim s = "" then
    E.parse_error ?file ~line ~col "empty platform spec"
  else
    let* workers = collect 0 [] (split_offsets ',' s) in
    match Dls.Platform.make workers with
    | Ok p -> Ok p
    | Error (E.Invalid_scenario msg) -> E.parse_error ?file ~line ~col "%s" msg
    | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let split_kv (tok : T.token) =
  match String.index_opt tok.T.text '=' with
  | Some i ->
    Some
      ( String.sub tok.T.text 0 i,
        String.sub tok.T.text (i + 1) (String.length tok.T.text - i - 1) )
  | None -> None

let parse_bool ?file ~line (tok : T.token) v =
  match v with
  | "true" | "1" -> Ok true
  | "false" | "0" -> Ok false
  | _ -> E.parse_error ?file ~line ~col:tok.T.col "expected true/false, got %S" v

let parse_int ?file ~line (tok : T.token) v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> E.parse_error ?file ~line ~col:tok.T.col "not an integer: %S" v

let parse_rational ?file ~line (tok : T.token) v =
  match Q.of_string v with
  | q -> Ok q
  | exception _ ->
    E.parse_error ?file ~line ~col:tok.T.col "not a rational: %S" v

(* [faults=slowdown:2:3/2:1/4;crash:0:5/8] — unpack into the Faults
   text format ([;] = newline, [:] = space) and reuse its parser.  The
   re-parse reports positions in the unpacked text; surface them at the
   option token instead, keeping the original message. *)
let parse_faults ?file ~line (tok : T.token) v =
  let text =
    String.map (function ';' -> '\n' | ':' -> ' ' | ch -> ch) v
  in
  match Dls.Faults.of_string text with
  | Ok plan -> Ok plan
  | Error (E.Parse_error { msg; _ }) ->
    E.parse_error ?file ~line ~col:tok.T.col "bad fault plan: %s" msg
  | Error e -> Error e

let parse_replan ?file ~line (tok : T.token) v =
  match v with
  | "none" -> Ok Replan_none
  | "auto" -> Ok Replan_auto
  | _ -> (
    match Dls.Replan.policy_of_string v with
    | Some p -> Ok (Replan_policy p)
    | None ->
      E.parse_error ?file ~line ~col:tok.T.col "unknown recovery policy %S" v)

let parse_order ?file ~line (tok : T.token) v =
  match v with
  | "fifo" -> Ok Fifo
  | "lifo" -> Ok Lifo
  | _ -> E.parse_error ?file ~line ~col:tok.T.col "expected fifo/lifo, got %S" v

let parse_model ?file ~line (tok : T.token) v =
  match v with
  | "one-port" | "1p" -> Ok Dls.Lp_model.One_port
  | "two-port" | "2p" -> Ok Dls.Lp_model.Two_port
  | _ ->
    E.parse_error ?file ~line ~col:tok.T.col "expected one-port/two-port, got %S" v

let parse_mode ?file ~line (tok : T.token) v =
  match v with
  | "steady" -> Ok Steady
  | "batch" -> Ok Batch
  | _ ->
    E.parse_error ?file ~line ~col:tok.T.col "expected steady/batch, got %S" v

let parse_request_v ?file ~line s =
  let malformed = function Ok r -> `Request r | Error e -> `Malformed e in
  match T.tokens s with
  | [] -> `Malformed (E.Parse_error { file; line; col = 1; msg = "empty request" })
  | verb :: rest -> (
    let spec_and_opts kind =
      match rest with
      | [] ->
        E.parse_error ?file ~line ~col:(verb.T.col + String.length verb.T.text)
          "%s needs a platform spec (c:w:d,...)" kind
      | spec :: opts ->
        let* p =
          platform_of_spec ?file ~line ~col:spec.T.col spec.T.text
        in
        Ok (p, opts)
    in
    let fold_opts opts ~init ~f =
      List.fold_left
        (fun acc tok ->
          let* acc = acc in
          match split_kv tok with
          | None ->
            E.parse_error ?file ~line ~col:tok.T.col
              "expected key=value, got %S" tok.T.text
          | Some (k, v) -> f acc tok k v)
        (Ok init) opts
    in
    let no_trailing kind =
      match rest with
      | [] -> Ok ()
      | tok :: _ ->
        E.parse_error ?file ~line ~col:tok.T.col "%s takes no arguments" kind
    in
    let known () =
      match verb.T.text with
    | "solve" ->
      let* p, opts = spec_and_opts "solve" in
      let init =
        {
          s_platform = p;
          s_order = Fifo;
          s_model = Dls.Lp_model.One_port;
          s_fast = true;
          s_load = None;
        }
      in
      let* r =
        fold_opts opts ~init ~f:(fun r tok k v ->
            match k with
            | "order" ->
              let* o = parse_order ?file ~line tok v in
              Ok { r with s_order = o }
            | "model" ->
              let* m = parse_model ?file ~line tok v in
              Ok { r with s_model = m }
            | "fast" ->
              let* b = parse_bool ?file ~line tok v in
              Ok { r with s_fast = b }
            | "load" ->
              let* q = parse_rational ?file ~line tok v in
              if Q.sign q <= 0 then
                E.parse_error ?file ~line ~col:tok.T.col "load must be positive"
              else Ok { r with s_load = Some q }
            | _ ->
              E.parse_error ?file ~line ~col:tok.T.col
                "unknown solve option %S" k)
      in
      Ok (Solve r)
    | "solve-multi" ->
      let* p, opts = spec_and_opts "solve-multi" in
      let init = (None, Steady, None) in
      let* workload, u_mode, u_depth =
        fold_opts opts ~init ~f:(fun (wl, mode, depth) tok k v ->
            match k with
            | "workload" ->
              (* positions inside the spec are relative to the value,
                 which starts after "workload=" within the token *)
              let col = tok.T.col + String.length k + 1 in
              let* w = Dls.Workload.of_spec ?file ~line ~col v in
              Ok (Some w, mode, depth)
            | "mode" ->
              let* m = parse_mode ?file ~line tok v in
              Ok (wl, m, depth)
            | "depth" ->
              let* d = parse_int ?file ~line tok v in
              if d < 0 then
                E.parse_error ?file ~line ~col:tok.T.col
                  "depth must be non-negative"
              else Ok (wl, mode, Some d)
            | _ ->
              E.parse_error ?file ~line ~col:tok.T.col
                "unknown solve-multi option %S" k)
      in
      (match workload with
      | None ->
        E.parse_error ?file ~line
          ~col:(verb.T.col + String.length verb.T.text)
          "solve-multi needs workload=size:release[:z],..."
      | Some u_workload ->
        if u_mode = Steady && u_depth <> None then
          E.parse_error ?file ~line ~col:verb.T.col
            "depth only applies to mode=batch"
        else Ok (Solve_multi { u_platform = p; u_workload; u_mode; u_depth }))
    | "simulate" ->
      let* p, opts = spec_and_opts "simulate" in
      let init =
        {
          m_platform = p;
          m_order = Fifo;
          m_items = 1000;
          m_faults = None;
          m_replan = Replan_auto;
        }
      in
      let* r =
        fold_opts opts ~init ~f:(fun r tok k v ->
            match k with
            | "order" ->
              let* o = parse_order ?file ~line tok v in
              Ok { r with m_order = o }
            | "items" ->
              let* n = parse_int ?file ~line tok v in
              if n <= 0 then
                E.parse_error ?file ~line ~col:tok.T.col "items must be positive"
              else Ok { r with m_items = n }
            | "faults" ->
              let* plan = parse_faults ?file ~line tok v in
              Ok { r with m_faults = Some plan }
            | "replan" ->
              let* rp = parse_replan ?file ~line tok v in
              Ok { r with m_replan = rp }
            | _ ->
              E.parse_error ?file ~line ~col:tok.T.col
                "unknown simulate option %S" k)
      in
      Ok (Simulate r)
    | "check" ->
      let* p, opts = spec_and_opts "check" in
      let* () =
        match opts with
        | [] -> Ok ()
        | tok :: _ ->
          E.parse_error ?file ~line ~col:tok.T.col "check takes no options"
      in
      Ok (Check p)
    | "stats" ->
      let* () = no_trailing "stats" in
      Ok Stats
    | "health" ->
      let* () = no_trailing "health" in
      Ok Health
    | "hello" ->
      let* () = no_trailing "hello" in
      Ok Hello
    | _ -> assert false
    in
    match verb.T.text with
    | "solve" | "solve-multi" | "simulate" | "check" | "stats" | "health"
    | "hello" ->
      malformed (known ())
    | other -> `Unknown_verb other)

let parse_request ?file ~line s =
  match parse_request_v ?file ~line s with
  | `Request r -> Ok r
  | `Malformed e -> Error e
  | `Unknown_verb other ->
    let col = match T.tokens s with tok :: _ -> tok.T.col | [] -> 1 in
    E.parse_error ?file ~line ~col "unknown request %S (expected %s)" other
      (String.concat "/" verbs)

(* ------------------------------------------------------------------ *)
(* Request rendering                                                   *)

let faults_to_inline plan =
  String.concat ";"
    (List.map
       (fun f ->
         String.map
           (function ' ' -> ':' | ch -> ch)
           (Dls.Faults.fault_to_string f))
       (Dls.Faults.faults plan))

let request_to_string = function
  | Solve r ->
    let b = Buffer.create 64 in
    Buffer.add_string b "solve ";
    Buffer.add_string b (platform_to_spec r.s_platform);
    Buffer.add_string b (" order=" ^ order_to_string r.s_order);
    Buffer.add_string b (" model=" ^ model_to_string r.s_model);
    Buffer.add_string b (" fast=" ^ bool_str r.s_fast);
    (match r.s_load with
    | Some q -> Buffer.add_string b (" load=" ^ Q.to_string q)
    | None -> ());
    Buffer.contents b
  | Solve_multi r ->
    let b = Buffer.create 64 in
    Buffer.add_string b "solve-multi ";
    Buffer.add_string b (platform_to_spec r.u_platform);
    Buffer.add_string b (" workload=" ^ Dls.Workload.to_spec r.u_workload);
    Buffer.add_string b (" mode=" ^ mode_to_string r.u_mode);
    (match r.u_depth with
    | Some d -> Buffer.add_string b (Printf.sprintf " depth=%d" d)
    | None -> ());
    Buffer.contents b
  | Simulate r ->
    let b = Buffer.create 64 in
    Buffer.add_string b "simulate ";
    Buffer.add_string b (platform_to_spec r.m_platform);
    Buffer.add_string b (" order=" ^ order_to_string r.m_order);
    Buffer.add_string b (Printf.sprintf " items=%d" r.m_items);
    (match r.m_faults with
    | Some plan when not (Dls.Faults.is_empty plan) ->
      Buffer.add_string b (" faults=" ^ faults_to_inline plan)
    | _ -> ());
    Buffer.add_string b (" replan=" ^ replan_to_string r.m_replan);
    Buffer.contents b
  | Check p -> "check " ^ platform_to_spec p
  | Stats -> "stats"
  | Health -> "health"
  | Hello -> "hello"

let request_key = request_to_string

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)

let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let error_to_string (e : E.t) =
  match e with
  | E.Unbounded -> "error unbounded"
  | E.Infeasible -> "error infeasible"
  | E.Invalid_scenario msg -> "error invalid " ^ one_line msg
  | E.Io_error msg -> "error io " ^ one_line msg
  | E.Parse_error { line; col; msg; file = _ } ->
    Printf.sprintf "error parse line=%d col=%d %s" line col (one_line msg)

let response_to_string = function
  | Ok_solve r ->
    let b = Buffer.create 128 in
    Buffer.add_string b ("ok solve rho=" ^ Q.to_string r.rho);
    Buffer.add_string b (" sigma1=" ^ int_list r.sigma1);
    Buffer.add_string b (" alpha=" ^ q_list r.alpha);
    Buffer.add_string b (" idle=" ^ q_list r.idle);
    (match r.makespan with
    | Some q -> Buffer.add_string b (" makespan=" ^ Q.to_string q)
    | None -> ());
    Buffer.contents b
  | Ok_multi r ->
    let b = Buffer.create 96 in
    Buffer.add_string b ("ok multi mode=" ^ mode_to_string r.mm_mode);
    let value_key = match r.mm_mode with Steady -> "period" | Batch -> "makespan" in
    Buffer.add_string b
      (Printf.sprintf " %s=%s" value_key (Q.to_string r.mm_value));
    Buffer.add_string b (" throughput=" ^ Q.to_string r.mm_throughput);
    (match r.mm_depth with
    | Some d -> Buffer.add_string b (Printf.sprintf " depth=%d" d)
    | None -> ());
    Buffer.add_string b (" alloc=" ^ alloc_list r.mm_alloc);
    Buffer.contents b
  | Ok_simulate r ->
    let b = Buffer.create 96 in
    Buffer.add_string b ("ok simulate makespan=" ^ float_str r.sim_makespan);
    Buffer.add_string b (" lp=" ^ float_str r.lp_makespan);
    Buffer.add_string b (" valid=" ^ bool_str r.sim_valid);
    (match r.achieved with
    | Some f -> Buffer.add_string b (" achieved=" ^ float_str f)
    | None -> ());
    (match r.achieved_ratio with
    | Some f -> Buffer.add_string b (" ratio=" ^ float_str f)
    | None -> ());
    (match r.replanned with
    | Some p -> Buffer.add_string b (" replan=" ^ p)
    | None -> ());
    Buffer.contents b
  | Ok_check r ->
    Printf.sprintf "ok check valid=%s violations=%d" (bool_str r.check_ok)
      r.violations
  | Ok_stats r ->
    Printf.sprintf
      "ok stats accepted=%d served=%d rejected=%d timed_out=%d failed=%d \
       malformed=%d batches=%d max_batch=%d collapsed=%d cache_hits=%d \
       cache_misses=%d repair_probes=%d repair_wins=%d repair_pivots=%d \
       dispatchers=%d steals=%d shed=%d brownouts=%d hangups=%d warm_hits=%d \
       journal_appended=%d journal_replayed=%d store_hits=%d store_misses=%d \
       store_demoted=%d compactions=%d queue_depth=%d inflight=%d \
       p50_us=%d p90_us=%d p99_us=%d max_us=%d uptime_s=%s"
      r.accepted r.served r.rejected r.timed_out r.failed r.malformed r.batches
      r.max_batch r.collapsed r.cache_hits r.cache_misses r.repair_probes
      r.repair_wins r.repair_pivots r.dispatchers r.steals r.shed r.brownouts
      r.hangups r.warm_hits r.journal_appended r.journal_replayed r.store_hits
      r.store_misses r.store_demoted r.compactions r.queue_depth
      r.inflight r.p50_us r.p90_us r.p99_us r.max_us (float_str r.uptime_s)
  | Ok_health r ->
    Printf.sprintf
      "ok health healthy=%s draining=%s mode=%s uptime_s=%s queue=%d \
       capacity=%d workers=%d"
      (bool_str r.healthy) (bool_str r.draining)
      (mode_str r.h_mode)
      (float_str r.h_uptime_s)
      r.h_queue_depth r.h_capacity r.h_workers
  | Ok_hello r ->
    Printf.sprintf "ok hello version=%d min=%d verbs=%s" r.server_version
      r.server_min_version
      (String.concat "," r.server_verbs)
  | Overloaded { depth; capacity } ->
    Printf.sprintf "overloaded depth=%d capacity=%d" depth capacity
  | Timed_out { budget } -> "timeout budget=" ^ float_str budget
  | Shed { wait; budget } ->
    Printf.sprintf "shed wait=%s budget=%s" (float_str wait) (float_str budget)
  | Unsupported { verb; server_version } ->
    Printf.sprintf "unsupported verb=%s version=%d" verb server_version
  | Failed e -> error_to_string e

let is_ok = function
  | Ok_solve _ | Ok_multi _ | Ok_simulate _ | Ok_check _ | Ok_stats _
  | Ok_health _ | Ok_hello _ ->
    true
  | Overloaded _ | Timed_out _ | Shed _ | Unsupported _ | Failed _ -> false

(* Same fields, same names, same order as the [ok stats ...] line — a
   machine-readable rendering for CI assertions and dashboards, so
   nothing has to scrape the ad-hoc text format. *)
let stats_to_json (r : stats_rep) =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_char b ',';
    first := false;
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)
  in
  let int k v = field k (string_of_int v) in
  int "accepted" r.accepted;
  int "served" r.served;
  int "rejected" r.rejected;
  int "timed_out" r.timed_out;
  int "failed" r.failed;
  int "malformed" r.malformed;
  int "batches" r.batches;
  int "max_batch" r.max_batch;
  int "collapsed" r.collapsed;
  int "cache_hits" r.cache_hits;
  int "cache_misses" r.cache_misses;
  int "repair_probes" r.repair_probes;
  int "repair_wins" r.repair_wins;
  int "repair_pivots" r.repair_pivots;
  int "dispatchers" r.dispatchers;
  int "steals" r.steals;
  int "shed" r.shed;
  int "brownouts" r.brownouts;
  int "hangups" r.hangups;
  int "warm_hits" r.warm_hits;
  int "journal_appended" r.journal_appended;
  int "journal_replayed" r.journal_replayed;
  int "store_hits" r.store_hits;
  int "store_misses" r.store_misses;
  int "store_demoted" r.store_demoted;
  int "compactions" r.compactions;
  int "queue_depth" r.queue_depth;
  int "inflight" r.inflight;
  int "p50_us" r.p50_us;
  int "p90_us" r.p90_us;
  int "p99_us" r.p99_us;
  int "max_us" r.max_us;
  field "uptime_s" (float_str r.uptime_s);
  Buffer.add_char b '}';
  Buffer.contents b

(* Fan-out merge for the router: counters add up across shards; the
   round/latency maxima stay maxima (a merged quantile of power-of-two
   bucket bounds is not reconstructible, so the conservative upper
   envelope is reported); [dispatchers] adds up because it counts
   serving threads behind the merged endpoint; [uptime_s] is the oldest
   shard — the merged endpoint has been serving at least that long. *)
let merge_stats (first : stats_rep) (rest : stats_rep list) =
  List.fold_left
    (fun a r ->
      {
        accepted = a.accepted + r.accepted;
        served = a.served + r.served;
        rejected = a.rejected + r.rejected;
        timed_out = a.timed_out + r.timed_out;
        failed = a.failed + r.failed;
        malformed = a.malformed + r.malformed;
        batches = a.batches + r.batches;
        max_batch = max a.max_batch r.max_batch;
        collapsed = a.collapsed + r.collapsed;
        cache_hits = a.cache_hits + r.cache_hits;
        cache_misses = a.cache_misses + r.cache_misses;
        repair_probes = a.repair_probes + r.repair_probes;
        repair_wins = a.repair_wins + r.repair_wins;
        repair_pivots = a.repair_pivots + r.repair_pivots;
        dispatchers = a.dispatchers + r.dispatchers;
        steals = a.steals + r.steals;
        shed = a.shed + r.shed;
        brownouts = a.brownouts + r.brownouts;
        hangups = a.hangups + r.hangups;
        warm_hits = a.warm_hits + r.warm_hits;
        journal_appended = a.journal_appended + r.journal_appended;
        journal_replayed = a.journal_replayed + r.journal_replayed;
        store_hits = a.store_hits + r.store_hits;
        store_misses = a.store_misses + r.store_misses;
        store_demoted = a.store_demoted + r.store_demoted;
        compactions = a.compactions + r.compactions;
        queue_depth = a.queue_depth + r.queue_depth;
        inflight = a.inflight + r.inflight;
        p50_us = max a.p50_us r.p50_us;
        p90_us = max a.p90_us r.p90_us;
        p99_us = max a.p99_us r.p99_us;
        max_us = max a.max_us r.max_us;
        uptime_s = Float.max a.uptime_s r.uptime_s;
      })
    first rest

(* ------------------------------------------------------------------ *)
(* Response parsing                                                    *)

let kv_map toks =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match split_kv tok with
      | Some (k, v) -> Ok ((k, (tok, v)) :: acc)
      | None ->
        E.parse_error ~line:1 ~col:tok.T.col "expected key=value, got %S"
          tok.T.text)
    (Ok []) toks

let need kvs k =
  match List.assoc_opt k kvs with
  | Some (tok, v) -> Ok (tok, v)
  | None -> E.parse_error ~line:1 ~col:1 "response misses field %S" k

let opt_field kvs k = Option.map snd (List.assoc_opt k kvs)

let need_int kvs k =
  let* tok, v = need kvs k in
  parse_int ~line:1 tok v

let opt_int ~default kvs k =
  match List.assoc_opt k kvs with
  | None -> Ok default
  | Some (tok, v) -> parse_int ~line:1 tok v

(* [float_of_string_opt] happily accepts "nan"/"inf"; protocol floats
   are measurements (makespans, budgets, uptimes) for which a
   non-finite value can only be an upstream bug, so it is rejected with
   a typed error instead of being propagated. *)
let finite_float ~col v =
  match float_of_string_opt v with
  | Some f when Float.is_finite f -> Ok f
  | Some _ -> E.parse_error ~line:1 ~col "non-finite float: %S" v
  | None -> E.parse_error ~line:1 ~col "not a float: %S" v

let need_float kvs k =
  let* tok, v = need kvs k in
  finite_float ~col:tok.T.col v

let need_bool kvs k =
  let* tok, v = need kvs k in
  parse_bool ~line:1 tok v

let need_q kvs k =
  let* tok, v = need kvs k in
  parse_rational ~line:1 tok v

let q_array ~col v =
  if v = "" then Ok [||]
  else
    let parts = String.split_on_char ',' v in
    let* qs =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match Q.of_string p with
          | q -> Ok (q :: acc)
          | exception _ ->
            E.parse_error ~line:1 ~col "not a rational: %S" p)
        (Ok []) parts
    in
    Ok (Array.of_list (List.rev qs))

let int_array ~col v =
  if v = "" then Ok [||]
  else
    let parts = String.split_on_char ',' v in
    let* is =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match int_of_string_opt p with
          | Some i -> Ok (i :: acc)
          | None -> E.parse_error ~line:1 ~col "not an integer: %S" p)
        (Ok []) parts
    in
    Ok (Array.of_list (List.rev is))

let opt_float kvs k =
  match List.assoc_opt k kvs with
  | None -> Ok None
  | Some (tok, v) ->
    let* f = finite_float ~col:tok.T.col v in
    Ok (Some f)

(* [error ...] / [ok simulate replan=...] carry a free-text tail; the
   tokens after a fixed prefix are rejoined from their recorded columns
   so interior spacing collapses to single blanks (the renderer never
   emits more anyway). *)
let rest_as_string toks = String.concat " " (List.map (fun t -> t.T.text) toks)

let parse_response s =
  match T.tokens s with
  | [] -> E.parse_error ~line:1 ~col:1 "empty response"
  | { T.text = "overloaded"; _ } :: rest ->
    let* kvs = kv_map rest in
    let* depth = need_int kvs "depth" in
    let* capacity = need_int kvs "capacity" in
    Ok (Overloaded { depth; capacity })
  | { T.text = "timeout"; _ } :: rest ->
    let* kvs = kv_map rest in
    let* budget = need_float kvs "budget" in
    Ok (Timed_out { budget })
  | { T.text = "shed"; _ } :: rest ->
    let* kvs = kv_map rest in
    let* wait = need_float kvs "wait" in
    let* budget = need_float kvs "budget" in
    Ok (Shed { wait; budget })
  | { T.text = "unsupported"; _ } :: rest ->
    let* kvs = kv_map rest in
    let* _, verb = need kvs "verb" in
    let* server_version = need_int kvs "version" in
    Ok (Unsupported { verb; server_version })
  | { T.text = "error"; _ } :: code :: rest -> (
    match code.T.text with
    | "unbounded" -> Ok (Failed E.Unbounded)
    | "infeasible" -> Ok (Failed E.Infeasible)
    | "invalid" -> Ok (Failed (E.Invalid_scenario (rest_as_string rest)))
    | "io" -> Ok (Failed (E.Io_error (rest_as_string rest)))
    | "parse" -> (
      match rest with
      | lt :: ct :: msg_toks -> (
        match (split_kv lt, split_kv ct) with
        | Some ("line", lv), Some ("col", cv) ->
          let* line = parse_int ~line:1 lt lv in
          let* col = parse_int ~line:1 ct cv in
          Ok
            (Failed
               (E.Parse_error
                  { file = None; line; col; msg = rest_as_string msg_toks }))
        | _ ->
          E.parse_error ~line:1 ~col:lt.T.col
            "error parse needs line= and col=")
      | _ ->
        E.parse_error ~line:1 ~col:code.T.col
          "error parse needs line= and col=")
    | other ->
      E.parse_error ~line:1 ~col:code.T.col "unknown error code %S" other)
  | { T.text = "error"; col; _ } :: [] ->
    E.parse_error ~line:1 ~col "error response misses its code"
  | { T.text = "ok"; _ } :: kind :: rest -> (
    match kind.T.text with
    | "solve" ->
      let* kvs = kv_map rest in
      let* rho = need_q kvs "rho" in
      let* _, s1 = need kvs "sigma1" in
      let* sigma1 = int_array ~col:1 s1 in
      let* _, av = need kvs "alpha" in
      let* alpha = q_array ~col:1 av in
      let* _, iv = need kvs "idle" in
      let* idle = q_array ~col:1 iv in
      let* makespan =
        match opt_field kvs "makespan" with
        | None -> Ok None
        | Some v -> (
          match Q.of_string v with
          | q -> Ok (Some q)
          | exception _ ->
            E.parse_error ~line:1 ~col:1 "not a rational: %S" v)
      in
      Ok (Ok_solve { rho; sigma1; alpha; idle; makespan })
    | "multi" ->
      let* kvs = kv_map rest in
      let* mode_tok, mode_v = need kvs "mode" in
      let* mm_mode = parse_mode ~line:1 mode_tok mode_v in
      let value_key = match mm_mode with Steady -> "period" | Batch -> "makespan" in
      let* mm_value = need_q kvs value_key in
      let* mm_throughput = need_q kvs "throughput" in
      let* mm_depth =
        match opt_field kvs "depth" with
        | None -> Ok None
        | Some v -> (
          match int_of_string_opt v with
          | Some d -> Ok (Some d)
          | None -> E.parse_error ~line:1 ~col:1 "not an integer: %S" v)
      in
      let* _, av = need kvs "alloc" in
      let* rows =
        if av = "" then Ok [||]
        else
          let* rows =
            List.fold_left
              (fun acc row ->
                let* acc = acc in
                let* qs = q_array ~col:1 row in
                Ok (qs :: acc))
              (Ok [])
              (String.split_on_char ';' av)
          in
          Ok (Array.of_list (List.rev rows))
      in
      Ok (Ok_multi { mm_mode; mm_value; mm_throughput; mm_depth; mm_alloc = rows })
    | "hello" ->
      let* kvs = kv_map rest in
      let* server_version = need_int kvs "version" in
      let* server_min_version = need_int kvs "min" in
      let* _, vv = need kvs "verbs" in
      let server_verbs =
        if vv = "" then [] else String.split_on_char ',' vv
      in
      Ok (Ok_hello { server_version; server_min_version; server_verbs })
    | "simulate" ->
      let* kvs = kv_map rest in
      let* sim_makespan = need_float kvs "makespan" in
      let* lp_makespan = need_float kvs "lp" in
      let* sim_valid = need_bool kvs "valid" in
      let* achieved = opt_float kvs "achieved" in
      let* achieved_ratio = opt_float kvs "ratio" in
      let replanned = opt_field kvs "replan" in
      Ok
        (Ok_simulate
           {
             sim_makespan;
             lp_makespan;
             sim_valid;
             achieved;
             achieved_ratio;
             replanned;
           })
    | "check" ->
      let* kvs = kv_map rest in
      let* check_ok = need_bool kvs "valid" in
      let* violations = need_int kvs "violations" in
      Ok (Ok_check { check_ok; violations })
    | "stats" ->
      let* kvs = kv_map rest in
      let* accepted = need_int kvs "accepted" in
      let* served = need_int kvs "served" in
      let* rejected = need_int kvs "rejected" in
      let* timed_out = need_int kvs "timed_out" in
      let* failed = need_int kvs "failed" in
      let* malformed = need_int kvs "malformed" in
      let* batches = need_int kvs "batches" in
      let* max_batch = need_int kvs "max_batch" in
      let* collapsed = need_int kvs "collapsed" in
      let* cache_hits = need_int kvs "cache_hits" in
      let* cache_misses = need_int kvs "cache_misses" in
      (* Absent on pre-repair servers; default 0 so new clients keep
         parsing old stats lines (kv_map already ignores unknown keys in
         the other direction). *)
      let* repair_probes = opt_int ~default:0 kvs "repair_probes" in
      let* repair_wins = opt_int ~default:0 kvs "repair_wins" in
      let* repair_pivots = opt_int ~default:0 kvs "repair_pivots" in
      (* Pre-sharding servers ran exactly one dispatcher and could not
         steal, so those are the wire defaults. *)
      let* dispatchers = opt_int ~default:1 kvs "dispatchers" in
      let* steals = opt_int ~default:0 kvs "steals" in
      (* Pre-resilience servers never shed, browned out, counted lost
         connections, or journaled, so every new counter defaults to 0
         when absent on the wire. *)
      let* shed = opt_int ~default:0 kvs "shed" in
      let* brownouts = opt_int ~default:0 kvs "brownouts" in
      let* hangups = opt_int ~default:0 kvs "hangups" in
      let* warm_hits = opt_int ~default:0 kvs "warm_hits" in
      let* journal_appended = opt_int ~default:0 kvs "journal_appended" in
      let* journal_replayed = opt_int ~default:0 kvs "journal_replayed" in
      (* Pre-scale-out servers had no tier-2 store and never compacted
         their journal; same default-0 back-compat story. *)
      let* store_hits = opt_int ~default:0 kvs "store_hits" in
      let* store_misses = opt_int ~default:0 kvs "store_misses" in
      let* store_demoted = opt_int ~default:0 kvs "store_demoted" in
      let* compactions = opt_int ~default:0 kvs "compactions" in
      let* queue_depth = need_int kvs "queue_depth" in
      let* inflight = need_int kvs "inflight" in
      let* p50_us = need_int kvs "p50_us" in
      let* p90_us = need_int kvs "p90_us" in
      let* p99_us = need_int kvs "p99_us" in
      let* max_us = need_int kvs "max_us" in
      let* uptime_s = need_float kvs "uptime_s" in
      Ok
        (Ok_stats
           {
             accepted;
             served;
             rejected;
             timed_out;
             failed;
             malformed;
             batches;
             max_batch;
             collapsed;
             cache_hits;
             cache_misses;
             repair_probes;
             repair_wins;
             repair_pivots;
             dispatchers;
             steals;
             shed;
             brownouts;
             hangups;
             warm_hits;
             journal_appended;
             journal_replayed;
             store_hits;
             store_misses;
             store_demoted;
             compactions;
             queue_depth;
             inflight;
             p50_us;
             p90_us;
             p99_us;
             max_us;
             uptime_s;
           })
    | "health" ->
      let* kvs = kv_map rest in
      let* healthy = need_bool kvs "healthy" in
      let* draining = need_bool kvs "draining" in
      (* Pre-resilience servers spoke only the two booleans; derive the
         mode from them when the field is absent so new clients keep
         parsing old health lines. *)
      let* h_mode =
        match opt_field kvs "mode" with
        | None ->
          Ok
            (if draining then Mode_draining
             else if healthy then Mode_healthy
             else Mode_degraded)
        | Some "healthy" -> Ok Mode_healthy
        | Some "degraded" -> Ok Mode_degraded
        | Some "draining" -> Ok Mode_draining
        | Some other ->
          E.parse_error ~line:1 ~col:1 "unknown health mode %S" other
      in
      let* h_uptime_s = need_float kvs "uptime_s" in
      let* h_queue_depth = need_int kvs "queue" in
      let* h_capacity = need_int kvs "capacity" in
      let* h_workers = need_int kvs "workers" in
      Ok
        (Ok_health
           {
             healthy;
             draining;
             h_mode;
             h_uptime_s;
             h_queue_depth;
             h_capacity;
             h_workers;
           })
    | other ->
      E.parse_error ~line:1 ~col:kind.T.col "unknown response kind %S" other)
  | { T.text = "ok"; col; _ } :: [] ->
    E.parse_error ~line:1 ~col "ok response misses its kind"
  | tok :: _ ->
    E.parse_error ~line:1 ~col:tok.T.col
      "unknown response status %S (expected ok/overloaded/timeout/shed/error)"
      tok.T.text
