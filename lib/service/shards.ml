(* N bounded queues + one shared wake signal.  The per-shard queues are
   plain {!Queue}s (their own locks bound the critical sections); the
   mutex/condvar here exist only so a dispatcher with nothing to pop —
   own shard and all victims empty — can sleep until any producer
   pushes anywhere.  The wake protocol is the usual one: producers
   signal under the mutex after a successful push, consumers re-check
   emptiness under the same mutex before waiting, so a push can never
   slip into the gap unseen. *)

type 'a t = {
  queues : 'a Queue.t array;
  m : Mutex.t;
  c : Condition.t;
  mutable closed : bool;
}

let create ~shards ~capacity =
  if shards < 1 || capacity < 1 then
    invalid_arg "Shards.create: shards and capacity must be >= 1";
  let per_shard = max 1 (capacity / shards) in
  {
    queues = Array.init shards (fun _ -> Queue.create ~capacity:per_shard);
    m = Mutex.create ();
    c = Condition.create ();
    closed = false;
  }

let shard_count t = Array.length t.queues
let shard_of_key t key = Hashtbl.hash key mod Array.length t.queues
let shard_length t i = Queue.length t.queues.(i)
let length t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let capacity t =
  Array.length t.queues * Queue.capacity t.queues.(0)

let try_push t ~key x =
  match Queue.try_push t.queues.(shard_of_key t key) x with
  | Queue.Enqueued ->
    Mutex.lock t.m;
    Condition.signal t.c;
    Mutex.unlock t.m;
    Queue.Enqueued
  | other -> other

let try_pop_from t i = Queue.try_pop t.queues.(i)

(* Own shard first; otherwise rob the longest backlog.  Victim lengths
   are sampled without locks — a stale choice only costs one failed
   try_pop and another sweep. *)
let try_claim t ~shard =
  match Queue.try_pop t.queues.(shard) with
  | Some x -> Some (x, shard)
  | None ->
    let n = Array.length t.queues in
    let best = ref (-1) and best_len = ref 0 in
    for k = 1 to n - 1 do
      let i = (shard + k) mod n in
      let len = Queue.length t.queues.(i) in
      if len > !best_len then begin
        best := i;
        best_len := len
      end
    done;
    if !best < 0 then None
    else
      match Queue.try_pop t.queues.(!best) with
      | Some x -> Some (x, !best)
      | None -> None (* victim emptied under us; caller re-sweeps *)

let rec pop t ~shard =
  match try_claim t ~shard with
  | Some r -> Some r
  | None ->
    Mutex.lock t.m;
    (* Re-check under the lock: a producer signals after pushing, also
       under the lock, so either the item is already visible here or
       the wait below will be woken. *)
    let quit = t.closed && length t = 0 in
    if (not quit) && length t = 0 then Condition.wait t.c t.m;
    Mutex.unlock t.m;
    if quit then None else pop t ~shard

let close t =
  Array.iter Queue.close t.queues;
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.c;
  Mutex.unlock t.m
