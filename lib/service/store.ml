(* Tier-2 solution store: Journal-format records + a byte-position
   index + cross-handle refresh.  See store.mli for the contract.

   Locking story.  [t.lock] guards every field of one handle.  Writers
   (add/compact) additionally take [append_guard] — one mutex for the
   whole process, because POSIX file locks are per-(process, inode) and
   would not exclude two handles in the same process — and then an OS
   [lockf] exclusive lock for cross-process exclusion.  A writer
   re-stats the path *after* acquiring the file lock: if the inode
   changed (another process compacted, swapping the file by rename), it
   reopens and retries, so no record is ever written to an unlinked
   file. *)

module E = Dls.Errors

type entry = { voff : int; vlen : int; crc : int32 }

type t = {
  path : string;
  sync : bool;
  lock : Mutex.t;
  index : (string, entry) Hashtbl.t;
  mutable fd : Unix.file_descr;
  mutable ino : int;
  mutable scanned : int;  (* bytes absorbed into the index *)
  mutable hits : int;
  mutable misses : int;
  mutable appended : int;
  mutable compactions : int;
  mutable closed : bool;
}

type stats = { hits : int; misses : int; appended : int; compactions : int }

let append_guard = Mutex.create ()

let io_error ctx e =
  E.Io_error (Printf.sprintf "store %s: %s" ctx (Unix.error_message e))

let read_exactly fd off len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create len in
  let rec fill got =
    if got < len then
      match Unix.read fd b got (len - got) with
      | 0 -> got
      | n -> fill (got + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill got
    else got
  in
  let got = fill 0 in
  Bytes.sub_string b 0 got

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec write off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  write 0

(* Walk the records of [contents] exactly like [Journal.scan_string],
   but report each value's absolute byte position ([base] + local
   offset) so the index can seek straight to it.  Returns the entries
   in order plus the byte offset just past the last good record. *)
let scan_entries ~base contents =
  let records, good = Journal.scan_string contents in
  let entries = ref [] in
  let pos = ref 0 in
  List.iter
    (fun (key, value) ->
      let line = Journal.render_record ~key ~value in
      let header_len =
        String.length line - String.length key - String.length value - 2
      in
      let voff = base + !pos + header_len + String.length key + 1 in
      entries :=
        ( key,
          {
            voff;
            vlen = String.length value;
            crc = Journal.crc32 (key ^ "\n" ^ value);
          } )
        :: !entries;
      pos := !pos + String.length line)
    records;
  (List.rev !entries, base + good)

(* Absorb whatever the file has grown (or turned into) since the last
   look.  With [t.lock] held. *)
let refresh_locked t =
  match Unix.stat t.path with
  | exception Unix.Unix_error (_, _, _) -> ()
  | st ->
      if st.Unix.st_ino <> t.ino then begin
        (* Another process compacted: the path is a fresh inode. *)
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        t.fd <- Unix.openfile t.path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644;
        t.ino <- (Unix.fstat t.fd).Unix.st_ino;
        t.scanned <- 0;
        Hashtbl.reset t.index
      end;
      let size = (Unix.fstat t.fd).Unix.st_size in
      if size > t.scanned then begin
        let tail = read_exactly t.fd t.scanned (size - t.scanned) in
        let entries, good = scan_entries ~base:t.scanned tail in
        List.iter (fun (k, e) -> Hashtbl.replace t.index k e) entries;
        t.scanned <- good
      end

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
      Mutex.unlock t.lock;
      x
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let open_ ?(sync = false) path =
  match
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
    let t =
      {
        path;
        sync;
        lock = Mutex.create ();
        index = Hashtbl.create 256;
        fd;
        ino = (Unix.fstat fd).Unix.st_ino;
        scanned = 0;
        hits = 0;
        misses = 0;
        appended = 0;
        compactions = 0;
        closed = false;
      }
    in
    refresh_locked t;
    t
  with
  | t -> Ok t
  | exception Unix.Unix_error (e, _, _) ->
      Error (E.Io_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let find t key =
  with_lock t (fun () ->
      if t.closed then None
      else begin
        refresh_locked t;
        match Hashtbl.find_opt t.index key with
        | None ->
            t.misses <- t.misses + 1;
            None
        | Some e ->
            let value = read_exactly t.fd e.voff e.vlen in
            if
              String.length value = e.vlen
              && Journal.crc32 (key ^ "\n" ^ value) = e.crc
            then begin
              t.hits <- t.hits + 1;
              Some value
            end
            else begin
              (* Unreadable on disk right now — never serve it. *)
              Hashtbl.remove t.index key;
              t.misses <- t.misses + 1;
              None
            end
      end)

let mem t key =
  with_lock t (fun () ->
      if t.closed then false
      else begin
        refresh_locked t;
        Hashtbl.mem t.index key
      end)

let length t = with_lock t (fun () -> Hashtbl.length t.index)

let size_bytes t =
  with_lock t (fun () ->
      if t.closed then 0
      else try (Unix.fstat t.fd).Unix.st_size with Unix.Unix_error _ -> 0)

(* Take the OS file lock (whole file, blocking).  lockf is relative to
   the file position, so park at 0 first. *)
let flock_exclusive fd = ignore (Unix.lseek fd 0 Unix.SEEK_SET); Unix.lockf fd Unix.F_LOCK 0
let flock_release fd = ignore (Unix.lseek fd 0 Unix.SEEK_SET); Unix.lockf fd Unix.F_ULOCK 0

(* Run [f] with the process mutex + file lock held, re-opening first if
   a concurrent compaction swapped the inode under us.  [t.lock] is
   held by the caller. *)
let rec with_file_lock ?(tries = 5) t f =
  flock_exclusive t.fd;
  let st = try Some (Unix.stat t.path) with Unix.Unix_error _ -> None in
  match st with
  | Some st when st.Unix.st_ino <> t.ino && tries > 0 ->
      flock_release t.fd;
      refresh_locked t;
      with_file_lock ~tries:(tries - 1) t f
  | _ -> (
      match f () with
      | x ->
          flock_release t.fd;
          x
      | exception e ->
          (try flock_release t.fd with Unix.Unix_error _ -> ());
          raise e)

let add t ~key ~value =
  if String.contains key '\n' || String.contains value '\n' then
    Error (E.Io_error "store: record contains a newline")
  else
    with_lock t (fun () ->
        if t.closed then Error (E.Io_error "store: closed")
        else begin
          refresh_locked t;
          if Hashtbl.mem t.index key then Ok ()
          else begin
            Mutex.lock append_guard;
            let result =
              match
                with_file_lock t (fun () ->
                    (* Under the exclusive lock no writer is mid-append,
                       so bytes past the scanned boundary are a torn
                       record from a crashed writer.  Truncate them
                       (Journal.open_'s policy), or the new record would
                       land beyond the tear where no scanner reaches. *)
                    refresh_locked t;
                    let size = (Unix.fstat t.fd).Unix.st_size in
                    if size > t.scanned then Unix.ftruncate t.fd t.scanned;
                    let line = Journal.render_record ~key ~value in
                    let at = Unix.lseek t.fd 0 Unix.SEEK_END in
                    write_all t.fd line;
                    if t.sync then Unix.fsync t.fd;
                    let header_len =
                      String.length line - String.length key
                      - String.length value - 2
                    in
                    Hashtbl.replace t.index key
                      {
                        voff = at + header_len + String.length key + 1;
                        vlen = String.length value;
                        crc = Journal.crc32 (key ^ "\n" ^ value);
                      };
                    t.appended <- t.appended + 1)
              with
              | () -> Ok ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error (io_error "append" e)
            in
            Mutex.unlock append_guard;
            result
          end
        end)

let compact t ?(live = fun _ -> true) () =
  with_lock t (fun () ->
      if t.closed then Error (E.Io_error "store: closed")
      else begin
        Mutex.lock append_guard;
        let result =
          match
            with_file_lock t (fun () ->
                refresh_locked t;
                let size = (Unix.fstat t.fd).Unix.st_size in
                let contents = read_exactly t.fd 0 size in
                let records, _ = Journal.scan_string contents in
                let last = Hashtbl.create 64 in
                List.iteri
                  (fun i (k, v) -> Hashtbl.replace last k (i, v))
                  records;
                let kept =
                  Hashtbl.fold
                    (fun k (i, v) acc ->
                      if live k then (i, k, v) :: acc else acc)
                    last []
                in
                let kept =
                  List.sort (fun (a, _, _) (b, _, _) -> compare a b) kept
                in
                let b = Buffer.create 4096 in
                List.iter
                  (fun (_, k, v) ->
                    Buffer.add_string b (Journal.render_record ~key:k ~value:v))
                  kept;
                let tmp = t.path ^ ".compact" in
                let tmp_fd =
                  Unix.openfile tmp
                    [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ]
                    0o644
                in
                write_all tmp_fd (Buffer.contents b);
                if t.sync then Unix.fsync tmp_fd;
                Unix.rename tmp t.path;
                (* The old fd still holds the file lock some waiter may
                   be queued on; swap our handle to the new inode — the
                   waiter will see the inode change and retry. *)
                let old = t.fd in
                t.fd <- tmp_fd;
                t.ino <- (Unix.fstat tmp_fd).Unix.st_ino;
                t.scanned <- 0;
                Hashtbl.reset t.index;
                refresh_locked t;
                t.compactions <- t.compactions + 1;
                (try flock_release old with Unix.Unix_error _ -> ());
                (try Unix.close old with Unix.Unix_error _ -> ());
                (size, Buffer.length b))
            with
            | sizes -> Ok sizes
            | exception Unix.Unix_error (e, _, _) ->
                Error (io_error "compact" e)
          in
          Mutex.unlock append_guard;
          result
      end)

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        appended = t.appended;
        compactions = t.compactions;
      })

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        try Unix.close t.fd with Unix.Unix_error _ -> ()
      end)
