(* Consistent-hash front router.  See router.mli for the contract.

   Thread model, after Chaos: one poll-accept listener, one thread per
   front connection, synchronous request/response per line (the
   protocol is strictly request/response, so nothing is lost by not
   pipelining).  Backend connections live in per-shard pools of
   Resilient clients: a connection thread borrows one for the duration
   of a single proxied request and returns it — breaker state included,
   so a tripped breaker fast-fails every borrower until its cooldown,
   which is exactly the per-backend policy we want. *)

module E = Dls.Errors
module P = Protocol

type config = {
  address : Server.address;
  shard_addresses : Server.address list;
  vnodes : int;
  attempts : int;
  attempt_timeout : float option;
}

let default_config address ~shard_addresses =
  { address; shard_addresses; vnodes = 128; attempts = 2;
    attempt_timeout = Some 1.0 }

type stats = {
  r_requests : int;
  r_routed : int array;
  r_failovers : int;
  r_unavailable : int;
  r_local : int;
  r_fanouts : int;
  r_hangups : int;
}

type pool = {
  pm : Mutex.t;
  rcfg : Resilient.config;
  mutable free : Resilient.t list;
  mutable all : Resilient.t list;
}

type t = {
  cfg : config;
  ring : Ring.t;
  pools : pool array;
  listen_fd : Unix.file_descr;
  bound : Server.address;
  draining : bool Atomic.t;
  mutable listener : Thread.t option;
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_m : Mutex.t;
  mutable next_conn : int;
  mutable stopped : bool;
  stop_m : Mutex.t;
  m_requests : int Atomic.t;
  m_routed : int Atomic.t array;
  m_failovers : int Atomic.t;
  m_unavailable : int Atomic.t;
  m_local : int Atomic.t;
  m_fanouts : int Atomic.t;
  m_hangups : int Atomic.t;
}

let address t = t.bound
let shard_of_key t key = Ring.lookup t.ring key

(* Stable shard identity for ring placement: the rendered address.
   Equal shard lists therefore give bit-identical rings in the router,
   the tests, and any future second router instance. *)
let shard_name = function
  | Server.Unix_socket path -> "unix:" ^ path
  | Server.Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let borrow pool =
  Mutex.lock pool.pm;
  let client =
    match pool.free with
    | c :: rest ->
        pool.free <- rest;
        c
    | [] ->
        let c = Resilient.create pool.rcfg in
        pool.all <- c :: pool.all;
        c
  in
  Mutex.unlock pool.pm;
  client

let give_back pool c =
  Mutex.lock pool.pm;
  pool.free <- c :: pool.free;
  Mutex.unlock pool.pm

let with_shard t i f =
  let pool = t.pools.(i) in
  let c = borrow pool in
  let result = f c in
  give_back pool c;
  result

(* ------------------------------------------------------------------ *)
(* Control plane: local answers and fan-out merges                     *)

let hello_rep =
  P.Ok_hello
    {
      server_version = P.version;
      server_min_version = P.min_version;
      server_verbs = P.verbs;
    }

(* Fan [req] out to every shard, keeping the well-formed answers that
   [pick] accepts.  Unreachable shards are skipped — the merge reports
   the reachable fleet, and [shards_total] lets health say whether that
   is everyone. *)
let fan_out t req ~pick =
  Atomic.incr t.m_fanouts;
  let answers = ref [] in
  Array.iteri
    (fun i _ ->
      match with_shard t i (fun c -> Resilient.request c req) with
      | Ok resp -> (
          match pick resp with
          | Some x -> answers := x :: !answers
          | None -> ())
      | Error _ -> ())
    t.pools;
  List.rev !answers

let merged_stats t =
  match fan_out t P.Stats ~pick:(function P.Ok_stats s -> Some s | _ -> None)
  with
  | [] -> P.Failed (E.Io_error "router: no shard reachable")
  | s :: rest -> P.Ok_stats (P.merge_stats s rest)

let merged_health t =
  let shards_total = Array.length t.pools in
  let answers =
    fan_out t P.Health ~pick:(function P.Ok_health h -> Some h | _ -> None)
  in
  match answers with
  | [] -> P.Failed (E.Io_error "router: no shard reachable")
  | first :: rest ->
      let all_reachable = List.length answers = shards_total in
      let worst a b =
        match (a, b) with
        | P.Mode_draining, _ | _, P.Mode_draining -> P.Mode_draining
        | P.Mode_degraded, _ | _, P.Mode_degraded -> P.Mode_degraded
        | P.Mode_healthy, P.Mode_healthy -> P.Mode_healthy
      in
      let merged =
        List.fold_left
          (fun a h ->
            P.
              {
                healthy = a.healthy && h.healthy;
                draining = a.draining || h.draining;
                h_mode = worst a.h_mode h.h_mode;
                h_uptime_s = Float.max a.h_uptime_s h.h_uptime_s;
                h_queue_depth = a.h_queue_depth + h.h_queue_depth;
                h_capacity = a.h_capacity + h.h_capacity;
                h_workers = a.h_workers + h.h_workers;
              })
          first rest
      in
      let h_mode =
        if all_reachable then merged.P.h_mode
        else worst merged.P.h_mode P.Mode_degraded
      in
      P.Ok_health
        { merged with P.healthy = merged.P.healthy && all_reachable; h_mode }

(* ------------------------------------------------------------------ *)
(* Data plane: ring placement with successor failover                  *)

let route_request t req =
  let key = P.request_key req in
  let rec try_shards ~first = function
    | [] ->
        Atomic.incr t.m_unavailable;
        P.Failed (E.Io_error "router: no shard available")
    | shard :: rest -> (
        match with_shard t shard (fun c -> Resilient.request c req) with
        | Ok resp ->
            Atomic.incr t.m_routed.(shard);
            if not first then Atomic.incr t.m_failovers;
            resp
        | Error _ -> try_shards ~first:false rest)
  in
  try_shards ~first:true (Ring.route t.ring key)

let handle_line t line =
  Atomic.incr t.m_requests;
  match P.parse_request_v ~line:1 line with
  | `Malformed e ->
      Atomic.incr t.m_local;
      P.Failed e
  | `Unknown_verb verb ->
      Atomic.incr t.m_local;
      P.Unsupported { verb; server_version = P.version }
  | `Request P.Hello ->
      Atomic.incr t.m_local;
      hello_rep
  | `Request P.Stats -> merged_stats t
  | `Request P.Health -> merged_health t
  | `Request req -> route_request t req

(* ------------------------------------------------------------------ *)
(* Front socket plumbing (the Chaos/Server pattern)                    *)

let serve_conn t conn_idx fd =
  let reader = Wire.reader fd in
  let rec loop () =
    match Wire.read_line reader with
    | Wire.Eof -> ()
    | Wire.Eof_mid_line | Wire.Deadline -> Atomic.incr t.m_hangups
    | Wire.Line line -> (
        let resp = handle_line t line in
        match Wire.write_line fd (P.response_to_string resp) with
        | Ok () -> loop ()
        | Error `Closed -> Atomic.incr t.m_hangups)
  in
  loop ();
  Mutex.lock t.conns_m;
  Hashtbl.remove t.conns conn_idx;
  Mutex.unlock t.conns_m;
  try Unix.close fd with Unix.Unix_error _ -> ()

let listener_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Mutex.lock t.conns_m;
              let id = t.next_conn in
              t.next_conn <- id + 1;
              let thread = Thread.create (fun () -> serve_conn t id fd) () in
              Hashtbl.add t.conns id (fd, thread);
              Mutex.unlock t.conns_m;
              loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
          | exception Unix.Unix_error _ -> loop ())
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
  in
  loop ()

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> raise Not_found
      | { Unix.h_addr_list; _ } -> h_addr_list.(0))

let bind_socket (address : Server.address) =
  match address with
  | Server.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, address)
  | Server.Tcp (host, port) ->
      let addr = resolve_host host in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Server.Tcp (host, p)
        | _ -> address
      in
      (fd, bound)

let start cfg =
  if cfg.shard_addresses = [] then Error (E.Io_error "router: no shards")
  else if cfg.vnodes <= 0 then Error (E.Io_error "router: vnodes must be >= 1")
  else begin
    (* A SIGKILLed shard turns the next write into SIGPIPE; without
       this a standalone router process dies with its shard.  (The
       in-process tests never see it: Server.start masks the signal
       process-wide.) *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    match bind_socket cfg.address with
    | exception Unix.Unix_error (err, fn, arg) ->
        Error
          (E.Io_error
             (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message err)))
    | exception Not_found -> Error (E.Io_error "cannot resolve host")
    | listen_fd, bound ->
        let shards = Array.of_list cfg.shard_addresses in
        let names = Array.map shard_name shards in
        let ring = Ring.create ~vnodes:cfg.vnodes names in
        let pools =
          Array.mapi
            (fun i addr ->
              let d = Resilient.default_config addr in
              {
                pm = Mutex.create ();
                rcfg =
                  {
                    d with
                    Resilient.attempts = max 1 cfg.attempts;
                    attempt_timeout = cfg.attempt_timeout;
                    (* Deterministic per-shard jitter: replayable
                       backoff, distinct across shards. *)
                    jitter_seed = i;
                  };
                free = [];
                all = [];
              })
            shards
        in
        let t =
          {
            cfg;
            ring;
            pools;
            listen_fd;
            bound;
            draining = Atomic.make false;
            listener = None;
            conns = Hashtbl.create 16;
            conns_m = Mutex.create ();
            next_conn = 0;
            stopped = false;
            stop_m = Mutex.create ();
            m_requests = Atomic.make 0;
            m_routed = Array.init (Array.length shards) (fun _ -> Atomic.make 0);
            m_failovers = Atomic.make 0;
            m_unavailable = Atomic.make 0;
            m_local = Atomic.make 0;
            m_fanouts = Atomic.make 0;
            m_hangups = Atomic.make 0;
          }
        in
        t.listener <- Some (Thread.create (fun () -> listener_loop t) ());
        Ok t
  end

let stop t =
  Mutex.lock t.stop_m;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_m;
  if not already then begin
    Atomic.set t.draining true;
    Option.iter Thread.join t.listener;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let conns =
      Mutex.lock t.conns_m;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_m;
      l
    in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, thread) -> Thread.join thread) conns;
    Array.iter
      (fun pool ->
        Mutex.lock pool.pm;
        List.iter Resilient.close pool.all;
        Mutex.unlock pool.pm)
      t.pools;
    match t.bound with
    | Server.Unix_socket path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | Server.Tcp _ -> ()
  end

let stats t =
  {
    r_requests = Atomic.get t.m_requests;
    r_routed = Array.map Atomic.get t.m_routed;
    r_failovers = Atomic.get t.m_failovers;
    r_unavailable = Atomic.get t.m_unavailable;
    r_local = Atomic.get t.m_local;
    r_fanouts = Atomic.get t.m_fanouts;
    r_hangups = Atomic.get t.m_hangups;
  }
