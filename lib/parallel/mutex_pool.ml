(* The PR-1 pool, frozen as the benchmark baseline for Part 8.  One
   mutex guards a single shared batch; chunks are claimed by advancing
   [next] under that lock; idle domains block on a condvar.  See
   mutex_pool.mli for why this still exists. *)

type batch = {
  run : int -> unit;
  size : int;
  chunk : int;
  mutable next : int;
  mutable live : int;
}

type t = {
  m : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  n_jobs : int;
}

let jobs t = t.n_jobs

let drain t b =
  while b.next < b.size do
    let lo = b.next in
    let hi = min (lo + b.chunk) b.size in
    b.next <- hi;
    Mutex.unlock t.m;
    for i = lo to hi - 1 do
      b.run i
    done;
    Mutex.lock t.m;
    b.live <- b.live - (hi - lo);
    if b.live = 0 then begin
      t.current <- None;
      Condition.broadcast t.batch_done
    end
  done

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if not t.stop then begin
      (match t.current with
      | Some b when b.next < b.size -> drain t b
      | _ -> Condition.wait t.work_available t.m);
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.m

let create ?jobs () =
  let n_jobs = max 1 (Option.value jobs ~default:(Pool.default_jobs ())) in
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      stop = false;
      domains = [];
      n_jobs;
    }
  in
  t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map ?chunk ?timeout t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_jobs <= 1 || n = 1 || t.domains = [] then
    Array.mapi (fun i x -> Pool.timed ?timeout ~index:i f x) arr
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let run i =
      match Pool.timed ?timeout ~index:i f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some e
    in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (t.n_jobs * 4))
    in
    let b = { run; size = n; chunk; next = 0; live = n } in
    Mutex.lock t.m;
    if t.current <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Mutex_pool.map: pool is busy (reentrant map?)"
    end;
    t.current <- Some b;
    Condition.broadcast t.work_available;
    drain t b;
    while b.live > 0 do
      Condition.wait t.batch_done t.m
    done;
    Mutex.unlock t.m;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map
      (function Some v -> v | None -> assert false)
      results
  end

let run ?jobs ?chunk ?timeout f arr =
  let n_jobs = max 1 (Option.value jobs ~default:(Pool.default_jobs ())) in
  if n_jobs <= 1 || Array.length arr <= 1 then
    Array.mapi (fun i x -> Pool.timed ?timeout ~index:i f x) arr
  else with_pool ~jobs:n_jobs (fun t -> map ?chunk ?timeout t f arr)
