(* Chase–Lev dynamic circular work-stealing deque (Chase & Lev, SPAA'05),
   on OCaml 5 atomics.

   Layout: [top] is the steal end (only ever incremented, by a winning
   CAS), [bottom] is the owner end (written only by the owner).  The
   live elements are the indices [top <= i < bottom] of a circular
   buffer.  OCaml's [Atomic] operations are sequentially consistent,
   which is strictly stronger than the acquire/release/seq_cst mix the
   published algorithm needs, so the classical correctness argument
   applies unchanged; see DESIGN.md §14 for which orderings are the
   load-bearing ones.

   Cells are themselves atomics: a thief may read a cell concurrently
   with the owner publishing a later element into a recycled slot, and
   per-cell atomicity keeps that a well-defined race — the top CAS then
   arbitrates who owns the value that was read.

   Growth is owner-only: the owner allocates a doubled buffer, copies
   the live window, and publishes it with a single atomic store.  A
   thief still holding the old buffer reads the same values for every
   index it can successfully claim (the copy preserved them), so stale
   buffers stay valid forever. *)

type 'a buffer = {
  mask : int;  (* size - 1; size is a power of two *)
  cells : 'a option Atomic.t array;
}

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer size =
  { mask = size - 1; cells = Array.init size (fun _ -> Atomic.make None) }

let create ?(capacity = 16) () =
  let rec pow2 n = if n >= capacity then n else pow2 (n * 2) in
  let size = pow2 8 in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer size) }

let cell buf i = Array.unsafe_get buf.cells (i land buf.mask)

(* Owner only: double the buffer, copying the live window [t, b). *)
let grow q buf ~t ~b =
  let bigger = make_buffer (2 * (buf.mask + 1)) in
  for i = t to b - 1 do
    Atomic.set (cell bigger i) (Atomic.get (cell buf i))
  done;
  Atomic.set q.buf bigger;
  bigger

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let buf = Atomic.get q.buf in
  let buf = if b - t > buf.mask then grow q buf ~t ~b else buf in
  Atomic.set (cell buf b) (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  let buf = Atomic.get q.buf in
  (* Publish the claim on index [b] before reading [top]: a thief that
     observes the old bottom can only be targeting indices < b, and the
     SC total order of these two operations against the thief's
     top-read/bottom-read pair is exactly what makes the non-CAS fast
     path below safe. *)
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty: restore the canonical empty shape. *)
    Atomic.set q.bottom t;
    None
  end
  else if b > t then begin
    (* More than one element: index [b] is unreachable by any thief
       that could still win a CAS, so take it without synchronizing. *)
    let x = Atomic.get (cell buf b) in
    Atomic.set (cell buf b) None;
    x
  end
  else begin
    (* Exactly one element: race the thieves for it with the same CAS
       they use. *)
    let x = Atomic.get (cell buf b) in
    let won = Atomic.compare_and_set q.top t (t + 1) in
    Atomic.set q.bottom (t + 1);
    if won then begin
      Atomic.set (cell buf b) None;
      x
    end
    else None
  end

let rec steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get q.buf in
    let x = Atomic.get (cell buf t) in
    if Atomic.compare_and_set q.top t (t + 1) then x
      (* The CAS succeeding proves no other claimant took index [t], and
         the value read above is the one the owner published there: the
         owner only recycles a slot after top has moved past it, which
         would have failed this CAS. *)
    else steal q (* lost to another thief or the owner; re-examine *)
  end

let length q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  max 0 (b - t)

let is_empty q = length q = 0
