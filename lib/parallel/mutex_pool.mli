(** The original mutex/condvar domain pool, kept as a benchmark baseline.

    This is the PR-1 pool verbatim: one global mutex serializes every
    chunk claim, one batch may run at a time ([map] on a busy pool is a
    programming error), and idle domains block on a condition variable.
    {!Pool} replaced it with lock-free work-stealing deques; this module
    survives solely so the pool scaling benchmark (bench Part 8,
    [BENCH_pool.json]) can measure the replacement against the real
    predecessor instead of a reconstruction.  Do not use it in new
    code — its one public client is [bench/main.ml].

    Semantics of [map]/[run] match {!Pool} (same determinism, same
    first-failure-wins exceptions, same cooperative [?timeout] via
    {!Pool.timed}), except that concurrent or reentrant [map] calls on
    one pool raise [Invalid_argument]. *)

type t

val create : ?jobs:int -> unit -> t
val jobs : t -> int
val shutdown : t -> unit
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

val map :
  ?chunk:int -> ?timeout:float -> t -> ('a -> 'b) -> 'a array -> 'b array

val run :
  ?jobs:int -> ?chunk:int -> ?timeout:float -> ('a -> 'b) -> 'a array -> 'b array
