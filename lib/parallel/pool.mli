(** Domain pool: deterministic data-parallel maps over OCaml 5 domains,
    scheduled by lock-free work stealing.

    A pool owns [jobs - 1] worker domains; the caller of {!map}
    participates as one more executor.  Every participant owns a
    Chase–Lev deque ({!Deque}): a {!map} call seeds its deque with the
    whole index range, and ranges wider than the chunk are split lazily
    in half — the executor keeps the lower half and pushes the upper
    half onto its {e own} deque, where idle domains steal the oldest
    (widest) ranges.  There is no lock on the claim path, so claims from
    different domains never contend once work has spread.

    {2 Determinism}

    Results are written into per-index slots, so the output of
    [map pool f arr] is {e exactly} [Array.map f arr] — same values,
    same order — independently of [jobs], chunk size, steal order, or
    how many other [map] calls run at the same time.  Scheduling decides
    only {e who} computes an item, never what the output contains.
    Parallelism only changes wall-clock time.

    Exceptions raised by [f] are caught per item; after the batch
    completes, the exception of the {e smallest} failing index is
    re-raised in the caller (again deterministic).  A failed batch
    leaves the pool fully reusable — worker domains survive and the next
    {!map} behaves normally.

    {2 Concurrency contract}

    Unlike its mutex-based predecessor (kept as {!Mutex_pool} for
    benchmarking), a pool is safe for {e concurrent} and {e reentrant}
    use:

    - Any number of threads or domains may call {!map} on the same pool
      at the same time; their batches interleave over the shared workers
      and each call returns its own deterministic result.
    - [f] may itself call {!map} on the same pool (reentrancy).  The
      inner call executes work-first — the calling domain processes its
      own range and keeps helping until the inner batch is complete — so
      nesting cannot deadlock.
    - Under pathological nesting depth (more simultaneous [map] calls
      than internal mapper slots, ≥ [max 4 (2*jobs)]) a call silently
      degrades to inline sequential execution, with identical results.

    {!shutdown} must not race with in-flight {!map} calls: quiesce
    callers first (the service layer does this by joining dispatchers
    before shutting the pool down). *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()]: the
    parallelism the hardware is expected to sustain. *)
val default_jobs : unit -> int

(** [create ~jobs ()] spawns [max 0 (jobs - 1)] worker domains
    (default [default_jobs ()]).  [jobs <= 1] builds a pool that runs
    everything in the calling domain. *)
val create : ?jobs:int -> unit -> t

(** [jobs pool] is the parallelism the pool was created with. *)
val jobs : t -> int

(** [shutdown pool] terminates the worker domains and joins them.
    Idempotent.  Any later {!map} on the pool runs sequentially. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** Raised in the caller when a task overran its [?timeout] budget.
    Cooperative: a domain cannot be interrupted mid-task, so the budget
    is checked when the task {e completes} — the overrunning item's
    result is discarded and this exception takes its failure slot
    (smallest failing index wins, as for any task exception).  A task
    that itself raised reports its own exception, not the overrun. *)
exception Task_timeout of { index : int; elapsed : float; budget : float }

(** [timed ?timeout ~index f x] is [f x] under the pool's cooperative
    budget check: when [f] returns after more than [timeout] seconds of
    {e monotonic} clock time ({!Clock}, immune to wall-clock steps), the
    result is discarded and {!Task_timeout} is raised instead (an
    exception raised by [f] itself wins over the overrun).  This is the
    exact primitive {!map} applies per item, exposed so other
    executors — e.g. a request-serving worker loop — can enforce
    per-task deadlines with identical semantics.  [timeout = None] is
    just [f x]. *)
val timed : ?timeout:float -> index:int -> ('a -> 'b) -> 'a -> 'b

(** [map ?chunk ?timeout pool f arr] is [Array.map f arr], computed by
    all pool members.  [chunk] requests the widest index range executed
    without further splitting (default: a heuristic giving each worker
    a few leaves); the pool auto-partitions — a chunk finer than
    [n / (8 * jobs)] is coarsened to that floor, since beyond ~8 leaves
    per participant extra splits only add claim traffic.  Granularity
    affects scheduling only, never the result.  [timeout] is a per-task
    wall-clock budget in seconds (see {!Task_timeout}).  Safe to call
    concurrently from several threads and reentrantly from within [f] —
    see the concurrency contract above. *)
val map : ?chunk:int -> ?timeout:float -> t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list ?chunk ?timeout pool f l] is [List.map f l] via {!map}. *)
val map_list : ?chunk:int -> ?timeout:float -> t -> ('a -> 'b) -> 'a list -> 'b list

(** [run ?jobs ?chunk ?timeout f arr] is a one-shot {!map} on a temporary
    pool: [with_pool ?jobs (fun p -> map ?chunk p f arr)].  [jobs <= 1]
    is a plain [Array.map] with no domain spawned. *)
val run : ?jobs:int -> ?chunk:int -> ?timeout:float -> ('a -> 'b) -> 'a array -> 'b array

(** [run_local ?jobs ?chunk ?timeout ~init f arr] is {!run} where [f] additionally
    receives a mutable scratch state, created by [init] once per
    participating domain ([jobs <= 1]: a single state for the whole
    array).  Intended for performance hints that survive between items
    claimed by the same domain — e.g. the previous item's optimal simplex
    basis as a warm start.  The determinism guarantee of {!run} only
    extends to [run_local] if [f]'s {e result} does not depend on the
    state (the state may freely change how fast the result is
    computed). *)
val run_local :
  ?jobs:int ->
  ?chunk:int ->
  ?timeout:float ->
  init:(unit -> 's) ->
  ('s -> 'a -> 'b) ->
  'a array ->
  'b array
