(* Classic Hashtbl + doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end.

   Concurrency: every structural access runs under [m]; [compute]
   callbacks run outside it.  [find_or_add] may run the callback in
   several domains at once (first store wins); [find_or_compute] is the
   single-flight variant: concurrent misses on the same key collapse
   into one callback run, the others block on [flight_done] and pick up
   the cached value. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

(* One in-flight compute.  The computer pins its result here, under the
   lock, before waking the joiners: a burst of inserts can evict the
   freshly cached entry between the broadcast and a joiner's wake-up,
   and the pin guarantees the joiner still receives the flight's value
   instead of silently recomputing.  [outcome] stays [None] when the
   compute raised — woken joiners then re-classify (one becomes the new
   computer). *)
type 'v flight = { mutable outcome : 'v option }

type ('k, 'v) t = {
  m : Mutex.t;
  flight_done : Condition.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  inflight : ('k, 'v flight) Hashtbl.t;
  cap : int;
  on_evict : ('k -> 'v -> unit) option;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable joins : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  joins : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 1024) ?on_evict () =
  {
    m = Mutex.create ();
    flight_done = Condition.create ();
    table = Hashtbl.create (max 16 (min capacity 4096));
    inflight = Hashtbl.create 16;
    cap = capacity;
    on_evict;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    joins = 0;
    evictions = 0;
  }

(* List surgery below runs with [t.m] held. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1;
      (* Runs with [t.m] held — the callback must not touch this
         cache (see the .mli contract). *)
      (match t.on_evict with Some f -> f n.key n.value | None -> ())

(* Recency bump without counter movement — the single-flight path does
   its own hit/miss/join accounting. *)
let peek_locked t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      touch t n;
      Some n.value
  | None -> None

let find_locked t k =
  match peek_locked t k with
  | Some v ->
      t.hits <- t.hits + 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let add_locked t k v =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table k
    | None -> ());
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n
  end

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | x ->
      Mutex.unlock t.m;
      x
  | exception e ->
      Mutex.unlock t.m;
      raise e

let find t k = with_lock t (fun () -> find_locked t k)
let add t k v = with_lock t (fun () -> add_locked t k v)

let find_or_add t k compute =
  match find t k with
  | Some v -> v
  | None -> (
      let v = compute () in
      (* Another domain may have stored [k] while we computed; keep the
         existing entry so every caller sees one canonical value. *)
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some n ->
              touch t n;
              n.value
          | None ->
              add_locked t k v;
              v))

(* Single-flight: classify under the lock — cached (hit), someone is
   computing it (join: wait for the flight and pick its pinned value
   up), or truly absent (miss: become the computer).  A joiner whose
   flight landed without a value (failed compute) loops and
   re-classifies, so progress is guaranteed: every round either returns
   or starts a compute, and computes terminate.  Eviction pressure
   cannot starve a joiner: the flight record pins the computed value
   independently of the cache table. *)
let find_or_compute t k compute =
  let run_compute fl =
    match compute () with
    | v ->
        Mutex.lock t.m;
        let canonical =
          match Hashtbl.find_opt t.table k with
          | Some n ->
              (* can only happen via a concurrent [add]; keep it canonical *)
              touch t n;
              n.value
          | None ->
              add_locked t k v;
              v
        in
        fl.outcome <- Some canonical;
        Hashtbl.remove t.inflight k;
        Condition.broadcast t.flight_done;
        Mutex.unlock t.m;
        canonical
    | exception e ->
        Mutex.lock t.m;
        Hashtbl.remove t.inflight k;
        Condition.broadcast t.flight_done;
        Mutex.unlock t.m;
        raise e
  in
  let flight_of k =
    match Hashtbl.find_opt t.inflight k with
    | Some fl -> fl
    | None -> assert false
  in
  let rec classify () =
    match peek_locked t k with
    | Some v ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.m;
        v
    | None ->
        if Hashtbl.mem t.inflight k then begin
          t.joins <- t.joins + 1;
          let fl = flight_of k in
          while
            fl.outcome = None
            &&
            match Hashtbl.find_opt t.inflight k with
            | Some cur -> cur == fl
            | None -> false
          do
            Condition.wait t.flight_done t.m
          done;
          match fl.outcome with
          | Some v ->
              (* The pinned value survives even if the entry was already
                 evicted by an insert burst; refresh recency when it is
                 still cached. *)
              (match Hashtbl.find_opt t.table k with
              | Some n -> touch t n
              | None -> ());
              Mutex.unlock t.m;
              v
          | None -> classify ()
        end
        else begin
          t.misses <- t.misses + 1;
          let fl = { outcome = None } in
          Hashtbl.replace t.inflight k fl;
          Mutex.unlock t.m;
          run_compute fl
        end
  in
  Mutex.lock t.m;
  classify ()

(* Nearest-key probe for warm starts: walk the recency list from the
   most-recently-used end scoring each key, and return the best-scoring
   entry.  [score k'] is a distance ([None] = incomparable); ties keep
   the more recently used entry.  The walk is bounded by [limit] nodes
   because it runs under the cache lock; counters and recency are left
   untouched — this is a read-only probe, not a lookup. *)
let find_nearest ?(limit = 32) t ~score =
  with_lock t (fun () ->
      let best = ref None in
      let rec walk n visited =
        match n with
        | None -> ()
        | Some _ when visited >= limit -> ()
        | Some node -> (
            match score node.key with
            | Some d
              when match !best with Some (bd, _, _) -> d < bd | None -> true
              ->
                best := Some (d, node.key, node.value);
                if d > 0 then walk node.next (visited + 1)
            | _ -> walk node.next (visited + 1))
      in
      walk t.head 0;
      match !best with Some (_, k, v) -> Some (k, v) | None -> None)

(* Tail-to-head walk: least-recently-used entries first, so replaying
   the fold's output into a fresh LRU (journal-style) reproduces the
   recency order.  Read-only — no counter or recency movement. *)
let fold t ~init ~f =
  with_lock t (fun () ->
      let rec walk acc = function
        | None -> acc
        | Some node -> walk (f acc node.key node.value) node.prev
      in
      walk init t.tail)

let mem t k = with_lock t (fun () -> Hashtbl.mem t.table k)
let length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        joins = t.joins;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.joins <- 0;
      t.evictions <- 0)
