(* Classic Hashtbl + doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end.

   Concurrency: every structural access runs under [m]; [compute]
   callbacks run outside it.  [find_or_add] may run the callback in
   several domains at once (first store wins); [find_or_compute] is the
   single-flight variant: concurrent misses on the same key collapse
   into one callback run, the others block on [flight_done] and pick up
   the cached value. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  m : Mutex.t;
  flight_done : Condition.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  inflight : ('k, unit) Hashtbl.t;
  cap : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable joins : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  joins : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 1024) () =
  {
    m = Mutex.create ();
    flight_done = Condition.create ();
    table = Hashtbl.create (max 16 (min capacity 4096));
    inflight = Hashtbl.create 16;
    cap = capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    joins = 0;
    evictions = 0;
  }

(* List surgery below runs with [t.m] held. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1

(* Recency bump without counter movement — the single-flight path does
   its own hit/miss/join accounting. *)
let peek_locked t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      touch t n;
      Some n.value
  | None -> None

let find_locked t k =
  match peek_locked t k with
  | Some v ->
      t.hits <- t.hits + 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      None

let add_locked t k v =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table k
    | None -> ());
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n
  end

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | x ->
      Mutex.unlock t.m;
      x
  | exception e ->
      Mutex.unlock t.m;
      raise e

let find t k = with_lock t (fun () -> find_locked t k)
let add t k v = with_lock t (fun () -> add_locked t k v)

let find_or_add t k compute =
  match find t k with
  | Some v -> v
  | None -> (
      let v = compute () in
      (* Another domain may have stored [k] while we computed; keep the
         existing entry so every caller sees one canonical value. *)
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some n ->
              touch t n;
              n.value
          | None ->
              add_locked t k v;
              v))

(* Single-flight: classify under the lock — cached (hit), someone is
   computing it (join: wait for the flight and pick the value up), or
   truly absent (miss: become the computer).  A joiner that finds the
   value gone after the flight (failed compute, or evicted by a burst of
   inserts) loops and re-classifies, so progress is guaranteed: every
   round either returns or starts a compute, and computes terminate. *)
let find_or_compute t k compute =
  let run_compute () =
    let finish () =
      Mutex.lock t.m;
      Hashtbl.remove t.inflight k;
      Condition.broadcast t.flight_done;
      Mutex.unlock t.m
    in
    match compute () with
    | v ->
        Mutex.lock t.m;
        (match Hashtbl.find_opt t.table k with
        | Some n ->
            (* can only happen via a concurrent [add]; keep it canonical *)
            touch t n;
            Hashtbl.remove t.inflight k;
            Condition.broadcast t.flight_done;
            Mutex.unlock t.m;
            n.value
        | None ->
            add_locked t k v;
            Hashtbl.remove t.inflight k;
            Condition.broadcast t.flight_done;
            Mutex.unlock t.m;
            v)
    | exception e ->
        finish ();
        raise e
  in
  let rec classify () =
    match peek_locked t k with
    | Some v ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.m;
        v
    | None ->
        if Hashtbl.mem t.inflight k then begin
          t.joins <- t.joins + 1;
          while Hashtbl.mem t.inflight k do
            Condition.wait t.flight_done t.m
          done;
          (* Usually the value is now cached; re-classify without
             touching the hit/miss counters again for the common case. *)
          match peek_locked t k with
          | Some v ->
              Mutex.unlock t.m;
              v
          | None -> classify ()
        end
        else begin
          t.misses <- t.misses + 1;
          Hashtbl.replace t.inflight k ();
          Mutex.unlock t.m;
          run_compute ()
        end
  in
  Mutex.lock t.m;
  classify ()

let mem t k = with_lock t (fun () -> Hashtbl.mem t.table k)
let length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        joins = t.joins;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.joins <- 0;
      t.evictions <- 0)
