(** Shared monotonic clock.

    Task timeouts ({!Pool.timed}) and service latency stamps measure
    {e elapsed} time, so they must read a clock that cannot step: a
    wall-clock adjustment (NTP correction, manual reset) during a task
    would otherwise fire a spurious timeout or file a negative latency.
    This module reads [CLOCK_MONOTONIC] through a tiny C stub — no
    extra dependency — and is safe to call from any domain or thread.

    The epoch is arbitrary (typically system boot): values are only
    meaningful as differences. *)

(** [now_ns ()] is the monotonic clock in nanoseconds since an
    arbitrary epoch. *)
val now_ns : unit -> int64

(** [now ()] is the monotonic clock in seconds since an arbitrary
    epoch, as a float ([now_ns] scaled; ~microsecond granularity is
    preserved for any realistic uptime). *)
val now : unit -> float

(** [elapsed_s ~since] is [now () -. since], clamped to be
    non-negative. *)
val elapsed_s : since:float -> float
