(** Chase–Lev work-stealing deque: single owner, many thieves.

    The owner pushes and pops at the {e bottom} (LIFO, uncontended in
    the common case); any other domain steals from the {e top} (FIFO,
    one [compare_and_set] per claim).  Built entirely on {!Atomic} —
    there is no lock anywhere, so a suspended thief can never block the
    owner or another thief, and claims from different deques never
    contend with each other at all.

    Every element pushed is delivered {e exactly once}: either to the
    owner via {!pop} or to exactly one thief via {!steal}.  This is the
    foundation of {!Pool}'s determinism story — the deque decides only
    {e who} runs a task, never {e what} the task computes or where its
    result lands.

    The circular buffer grows transparently (owner-side only), so
    capacity is just a hint.  Indices are native 63-bit integers and
    never wrap in practice.

    Ownership discipline: [push] and [pop] must only ever be called by
    one domain at a time (the owner — which may change between
    quiescent points, as in {!Pool}'s slot reuse); [steal], [length]
    and [is_empty] are safe from anywhere. *)

type 'a t

(** [create ?capacity ()] is an empty deque.  [capacity] (default 16)
    is rounded up to a power of two and grows on demand. *)
val create : ?capacity:int -> unit -> 'a t

(** Owner only.  [push d x] adds [x] at the bottom. *)
val push : 'a t -> 'a -> unit

(** Owner only.  [pop d] removes the most recently pushed remaining
    element (bottom end), or [None] if the deque is empty — including
    when the last element was lost to a concurrent {!steal}. *)
val pop : 'a t -> 'a option

(** Any domain.  [steal d] claims the oldest remaining element (top
    end).  Retries internally while it loses CAS races to other
    thieves; returns [None] only once the deque is observed empty. *)
val steal : 'a t -> 'a option

(** [length d] is a snapshot of the element count — exact when
    quiescent, a momentary approximation under concurrency (used only
    as a victim-selection heuristic, never for correctness). *)
val length : 'a t -> int

val is_empty : 'a t -> bool
