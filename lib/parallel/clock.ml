external now_ns : unit -> (int64[@unboxed])
  = "dls_monotonic_ns_bytecode" "dls_monotonic_ns_native"
[@@noalloc]

let now () = Int64.to_float (now_ns ()) *. 1e-9
let elapsed_s ~since = Float.max 0. (now () -. since)
