(** Size-bounded LRU memo cache, safe for concurrent use from multiple
    domains (a single {!Mutex} guards the table; the expensive compute
    in {!find_or_add} and {!find_or_compute} runs {e outside} the lock).

    Intended for memoising pure functions whose results are structurally
    identical whenever the keys are equal — e.g. exact LP solutions
    keyed by a canonical scenario fingerprint.  Under that assumption a
    racy double-compute is harmless: both domains produce the same
    value and the first insertion wins.  When the compute is expensive
    enough that the duplicated work matters (a server fielding many
    concurrent identical requests), use {!find_or_compute}, which
    additionally collapses concurrent misses on one key into a single
    callback run. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  joins : int;
      (** {!find_or_compute} calls that joined another domain's
          in-flight compute instead of hitting or computing *)
  evictions : int;
  size : int;  (** current number of entries *)
  capacity : int;
}

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries (least-recently-used evicted first).  [capacity <= 0]
    disables caching: every lookup misses and nothing is stored.

    [on_evict] (optional) observes every capacity eviction — the hook
    the service layer uses to count tier-1 → tier-2 cache demotions.
    It runs {e with the cache lock held}, so it must be cheap and must
    not touch this cache (a counter increment, not a recompute).  It is
    not called for {!clear} or for an {!add} that replaces an existing
    key. *)
val create :
  ?capacity:int -> ?on_evict:('k -> 'v -> unit) -> unit -> ('k, 'v) t

(** [find t k] is the cached value for [k], refreshing its recency. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts (or refreshes) [k -> v], evicting the
    least-recently-used entry if the cache is full. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t k compute] returns the cached value for [k], or runs
    [compute ()] (outside the cache lock), stores and returns it.  If
    another domain raced us to the same key, the already-stored value is
    returned so all callers observe one canonical entry.  Concurrent
    misses on the same key may each run [compute] (first store wins). *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** [find_or_compute t k compute] is {!find_or_add} with {e single
    flight}: if another domain is already computing [k], the call blocks
    until that flight lands and returns its value instead of computing
    again (counted in [stats.joins]).  Exactly one [compute] runs per
    key while the entry stays cached.  If the in-flight compute raises,
    its waiters transparently retry (one of them becomes the new
    computer); the exception propagates only to the caller whose
    callback raised.  The flight's value is pinned to the flight record
    before the waiters wake, so joiners receive it even when an insert
    burst evicts the freshly cached entry first — eviction pressure can
    never force a joiner to recompute a landed flight.  Single-threaded
    behaviour — and therefore the hit/miss accounting observable
    sequentially — is identical to {!find_or_add}. *)
val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

(** [find_nearest ?limit t ~score] walks the recency list from the
    most-recently-used end, scoring every key with [score] ([None] =
    incomparable), and returns the best-scoring (smallest-distance)
    entry, ties resolved toward more recent use.  At most [limit]
    (default 32) entries are examined — the walk holds the cache lock —
    and a distance of [0] short-circuits.  Counters and recency are not
    touched: this is a read-only probe for warm-start candidates, not a
    lookup. *)
val find_nearest :
  ?limit:int -> ('k, 'v) t -> score:('k -> int option) -> ('k * 'v) option

(** [fold t ~init ~f] folds over every cached entry from the
    least-recently-used end to the most-recently-used one, under the
    cache lock ([f] must not re-enter the cache).  The ordering means
    that replaying the visited pairs into a fresh cache with {!add}
    reproduces this cache's recency order — the property the service's
    crash-safe journal relies on.  Read-only: counters and recency are
    untouched. *)
val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a

val mem : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

(** [stats t] is a snapshot of hit/miss/join/eviction counters. *)
val stats : ('k, 'v) t -> stats

(** [clear t] drops all entries and resets the counters. *)
val clear : ('k, 'v) t -> unit
