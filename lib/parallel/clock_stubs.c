/* Monotonic clock for the pool and the service metrics.
 *
 * CLOCK_MONOTONIC never steps with wall-clock adjustments (NTP slews,
 * manual resets, leap smearing), so elapsed times computed from it are
 * immune to the skew that makes gettimeofday-based timeouts fire early
 * or latency percentiles go negative.  Falls back to the realtime
 * clock only where no monotonic source exists.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <stdint.h>
#include <time.h>

#if !defined(_WIN32)
#include <sys/time.h>
#endif

int64_t dls_monotonic_ns_native(value unit)
{
  (void) unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return (int64_t) ts.tv_sec * INT64_C(1000000000) + (int64_t) ts.tv_nsec;
#endif
#if !defined(_WIN32)
  {
    struct timeval tv;
    if (gettimeofday(&tv, NULL) == 0)
      return (int64_t) tv.tv_sec * INT64_C(1000000000)
             + (int64_t) tv.tv_usec * INT64_C(1000);
  }
#endif
  return 0;
}

value dls_monotonic_ns_bytecode(value unit)
{
  return caml_copy_int64(dls_monotonic_ns_native(unit));
}
