(* A batch is one [map] call: tasks are claimed by advancing [next]
   under the pool mutex (in chunks), results land in per-index slots, so
   ordering is deterministic no matter which domain runs what. *)
type batch = {
  run : int -> unit;  (* execute item [i], store its result slot *)
  size : int;
  chunk : int;
  mutable next : int;  (* first unclaimed index *)
  mutable live : int;  (* claimed-or-unclaimed items not yet finished *)
}

type t = {
  m : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  n_jobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* Claim and run items of [b] until none are left to claim.  Called and
   returns with [t.m] held. *)
let drain t b =
  while b.next < b.size do
    let lo = b.next in
    let hi = min (lo + b.chunk) b.size in
    b.next <- hi;
    Mutex.unlock t.m;
    for i = lo to hi - 1 do
      b.run i
    done;
    Mutex.lock t.m;
    b.live <- b.live - (hi - lo);
    if b.live = 0 then begin
      t.current <- None;
      Condition.broadcast t.batch_done
    end
  done

let worker t =
  Mutex.lock t.m;
  let rec loop () =
    if not t.stop then begin
      (match t.current with
      | Some b when b.next < b.size -> drain t b
      | _ -> Condition.wait t.work_available t.m);
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.m

let create ?jobs () =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      current = None;
      stop = false;
      domains = [];
      n_jobs;
    }
  in
  t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_chunk ~size ~jobs =
  (* a few claims per worker: small enough to balance, large enough to
     keep the queue out of the profile *)
  max 1 (size / (jobs * 4))

exception Task_timeout of { index : int; elapsed : float; budget : float }

let () =
  Printexc.register_printer (function
    | Task_timeout { index; elapsed; budget } ->
      Some
        (Printf.sprintf
           "Pool.Task_timeout (item %d ran %.3fs, budget %.3fs)" index elapsed
           budget)
    | _ -> None)

(* Cooperative: a domain cannot be killed mid-task, so the budget is
   checked when the task completes — an overrunning item still finishes,
   but its result is replaced by [Task_timeout] and the batch fails
   deterministically (smallest index first, like any other task
   exception).  A task's own exception wins over the overrun. *)
let timed ?timeout ~index f x =
  match timeout with
  | None -> f x
  | Some budget ->
    let t0 = Unix.gettimeofday () in
    let v = f x in
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed > budget then raise (Task_timeout { index; elapsed; budget });
    v

let map ?chunk ?timeout t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_jobs <= 1 || n = 1 || t.domains = [] then
    Array.mapi (fun i x -> timed ?timeout ~index:i f x) arr
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let run i =
      match timed ?timeout ~index:i f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some e
    in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> default_chunk ~size:n ~jobs:t.n_jobs
    in
    let b = { run; size = n; chunk; next = 0; live = n } in
    Mutex.lock t.m;
    if t.current <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.map: pool is busy (reentrant map?)"
    end;
    t.current <- Some b;
    Condition.broadcast t.work_available;
    drain t b;
    while b.live > 0 do
      Condition.wait t.batch_done t.m
    done;
    Mutex.unlock t.m;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map
      (function Some v -> v | None -> assert false (* every slot ran *))
      results
  end

let map_list ?chunk ?timeout t f l =
  Array.to_list (map ?chunk ?timeout t f (Array.of_list l))

let run ?jobs ?chunk ?timeout f arr =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  if n_jobs <= 1 || Array.length arr <= 1 then
    Array.mapi (fun i x -> timed ?timeout ~index:i f x) arr
  else with_pool ~jobs:n_jobs (fun t -> map ?chunk ?timeout t f arr)

let run_local ?jobs ?chunk ?timeout ~init f arr =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  if n_jobs <= 1 || Array.length arr <= 1 then begin
    let state = init () in
    Array.mapi (fun i x -> timed ?timeout ~index:i (f state) x) arr
  end
  else
    with_pool ~jobs:n_jobs (fun t ->
        (* One scratch state per participating domain, created lazily on
           the domain's first claim.  The key is fresh per call, so
           states never leak between batches. *)
        let key = Domain.DLS.new_key init in
        map ?chunk ?timeout t (fun x -> f (Domain.DLS.get key) x) arr)
