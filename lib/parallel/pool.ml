(* Work-stealing domain pool.
 *
 * Task distribution is lock-free: every participant — worker domain or
 * active [map] caller — owns a Chase–Lev deque ({!Deque}).  A [map]
 * call claims a mapper slot, turns its index range into a task, and
 * executes it by lazy binary splitting: ranges wider than the chunk
 * push their upper half onto the owner's own deque (bottom, LIFO) and
 * recurse into the lower half, so the owner walks indices in ascending
 * order while idle domains steal the oldest — widest — ranges from the
 * top and split those in their own deques.  After the first few steals
 * almost every claim is an uncontended owner-local pop; there is no
 * shared lock anywhere on the claim path, so any number of [map] calls
 * can run concurrently (or reentrantly) on one pool.
 *
 * Determinism is untouched by all of this: results land in per-index
 * slots, so scheduling decides only who computes an item, never what
 * the output array contains.  Failures are collected per index and the
 * smallest failing index re-raises in the caller, as before.
 *
 * The only mutex left guards the idle-sleep protocol (workers that
 * found no work anywhere park on a condvar until a push wakes them)
 * and each batch's completion signal; neither is on the claim path. *)

type batch = {
  run : int -> unit;  (* execute item [i] into its result slot; never raises *)
  grain : int;  (* widest range executed without splitting *)
  remaining : int Atomic.t;  (* items not yet finished, across all domains *)
  bm : Mutex.t;
  bc : Condition.t;  (* signalled once [remaining] hits 0 *)
}

type task = { b : batch; lo : int; hi : int }

type t = {
  slots : task Deque.t array;
  (* [0 .. n_jobs-2] are owned by the worker domains; the rest are
     mapper slots, claimed per [map] call via [slot_busy]. *)
  slot_busy : bool Atomic.t array;
  pending : int Atomic.t;  (* pushed-but-unclaimed tasks, pool-wide *)
  sleepers : int Atomic.t;
  m : Mutex.t;
  work_available : Condition.t;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  n_jobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* ------------------------------------------------------------------ *)
(* Cooperative timeouts                                                *)

exception Task_timeout of { index : int; elapsed : float; budget : float }

let () =
  Printexc.register_printer (function
    | Task_timeout { index; elapsed; budget } ->
      Some
        (Printf.sprintf
           "Pool.Task_timeout (item %d ran %.3fs, budget %.3fs)" index elapsed
           budget)
    | _ -> None)

(* Cooperative: a domain cannot be killed mid-task, so the budget is
   checked when the task completes — an overrunning item still finishes,
   but its result is replaced by [Task_timeout] and the batch fails
   deterministically (smallest index first, like any other task
   exception).  A task's own exception wins over the overrun.  The
   clock is monotonic ({!Clock}), so a wall-clock step during the task
   can neither fire a spurious timeout nor mask a real one. *)
let timed ?timeout ~index f x =
  match timeout with
  | None -> f x
  | Some budget ->
    let t0 = Clock.now () in
    let v = f x in
    let elapsed = Clock.elapsed_s ~since:t0 in
    if elapsed > budget then raise (Task_timeout { index; elapsed; budget });
    v

(* ------------------------------------------------------------------ *)
(* Task execution: lazy binary splitting                               *)

(* Wakeups are a parallelism hint, not a liveness requirement: every
   participant drains its own deque before idling, so a batch completes
   even if no sleeper ever wakes.  That lets the push path signal
   WITHOUT taking [t.m] (legal for condvars) — a signal that races into
   a sleeper's check-then-wait gap is simply lost, and the next push
   retries.  Taking the mutex here would serialize pushers against
   workers re-acquiring it as they wake, forcing a context switch per
   push on a loaded machine.  Shutdown still broadcasts under the
   mutex, so parking workers never miss [stop]. *)
let wake_one t =
  if Atomic.get t.sleepers > 0 then Condition.signal t.work_available

let finish b k =
  (* fetch_and_add returns the pre-decrement value: [k] means this was
     the batch's last live range. *)
  if Atomic.fetch_and_add b.remaining (-k) = k then begin
    Mutex.lock b.bm;
    Condition.broadcast b.bc;
    Mutex.unlock b.bm
  end

(* Run one claimed range on the deque [my], splitting as we go.  Only
   the bottom half is executed here; upper halves go onto our own deque
   where we will pop them next (depth-first, ascending indices) unless
   a thief takes them first. *)
let exec_task t ~my { b; lo; hi } =
  let d = t.slots.(my) in
  let lo = ref lo and hi = ref hi in
  let running = ref true in
  while !running do
    if !hi - !lo > b.grain then begin
      let mid = (!lo + !hi) / 2 in
      Deque.push d { b; lo = mid; hi = !hi };
      Atomic.incr t.pending;
      wake_one t;
      hi := mid
    end
    else begin
      for i = !lo to !hi - 1 do
        b.run i
      done;
      finish b (!hi - !lo);
      running := false
    end
  done

(* Claim work: own deque first (uncontended pop), then sweep the other
   deques as a thief, starting just past our own so victims differ
   across participants. *)
let next_task t ~my =
  match Deque.pop t.slots.(my) with
  | Some _ as r ->
    Atomic.decr t.pending;
    r
  | None ->
    let n = Array.length t.slots in
    let rec sweep i =
      if i >= n then None
      else
        match Deque.steal t.slots.((my + i) mod n) with
        | Some _ as r ->
          Atomic.decr t.pending;
          r
        | None -> sweep (i + 1)
    in
    sweep 1

(* A full [next_task] miss already swept every deque in the pool, so a
   handful of retries is plenty before parking — spinning longer only
   steals cycles from the domains that hold actual work. *)
let spin_budget = 4

let worker t k =
  let spins = ref 0 in
  while not (Atomic.get t.stop) do
    match next_task t ~my:k with
    | Some task ->
      spins := 0;
      exec_task t ~my:k task
    | None ->
      incr spins;
      if !spins < spin_budget then Domain.cpu_relax ()
      else begin
        spins := 0;
        (* Idle-sleep protocol: [sleepers] is raised before re-checking
           [pending] (both SC atomics), and pushers read [sleepers]
           after raising [pending] — so at least one side always sees
           the other and no wakeup is lost; the mutex only closes the
           check-then-wait gap. *)
        Mutex.lock t.m;
        Atomic.incr t.sleepers;
        if Atomic.get t.pending = 0 && not (Atomic.get t.stop) then
          Condition.wait t.work_available t.m;
        Atomic.decr t.sleepers;
        Mutex.unlock t.m
      end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create ?jobs () =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let workers = n_jobs - 1 in
  (* Enough mapper slots for every domain to be inside a reentrant
     [map] plus external callers; exhaustion degrades to inline
     execution, never an error. *)
  let mappers = max 4 (2 * n_jobs) in
  let n_slots = workers + mappers in
  let t =
    {
      slots = Array.init n_slots (fun _ -> Deque.create ());
      slot_busy = Array.init n_slots (fun i -> Atomic.make (i < workers));
      pending = Atomic.make 0;
      sleepers = Atomic.make 0;
      m = Mutex.create ();
      work_available = Condition.create ();
      stop = Atomic.make false;
      domains = [];
      n_jobs;
    }
  in
  t.domains <- List.init workers (fun k -> Domain.spawn (fun () -> worker t k));
  t

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.m;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Mapper-slot claim: first free slot past the worker-owned prefix.
   Lock-free; [None] under pathological reentrancy depth. *)
let acquire_slot t =
  let n = Array.length t.slot_busy in
  let workers = t.n_jobs - 1 in
  let rec go i =
    if i >= n then None
    else if
      (not (Atomic.get t.slot_busy.(i)))
      && Atomic.compare_and_set t.slot_busy.(i) false true
    then Some i
    else go (i + 1)
  in
  go workers

let release_slot t i = Atomic.set t.slot_busy.(i) false

let default_chunk ~size ~jobs =
  (* a few leaves per worker: small enough that thieves find ranges
     worth splitting, large enough to keep per-claim overhead out of
     the profile *)
  max 1 (size / (jobs * 4))

let map ?chunk ?timeout t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_jobs <= 1 || n = 1 || t.domains = [] then
    Array.mapi (fun i x -> timed ?timeout ~index:i f x) arr
  else begin
    let results = Array.make n None in
    let failures = Array.make n None in
    let run i =
      match timed ?timeout ~index:i f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some e
    in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> default_chunk ~size:n ~jobs:t.n_jobs
    in
    (* Auto-partitioning: [chunk] is the granularity the caller wants
       for load balancing, but below [n / (8 * jobs)] extra splits only
       add claim traffic — ~8 leaves per participant already lets
       thieves even out a skewed batch.  Coarsening the grain changes
       which domain runs an item, never the result (per-index slots). *)
    let grain = max chunk (n / (8 * t.n_jobs)) in
    (match acquire_slot t with
    | None ->
      (* Every mapper slot is busy (deep reentrancy): run inline.
         Results are identical — only the parallelism is lost. *)
      for i = 0 to n - 1 do
        run i
      done
    | Some my ->
      let b =
        {
          run;
          grain;
          remaining = Atomic.make n;
          bm = Mutex.create ();
          bc = Condition.create ();
        }
      in
      (* Participate: execute our own range depth-first, then drain
         whatever of it is still on our deque.  Parked workers are woken
         by the per-push signals as the spine unfolds. *)
      exec_task t ~my { b; lo = 0; hi = n };
      let rec drain () =
        match Deque.pop t.slots.(my) with
        | Some task ->
          Atomic.decr t.pending;
          exec_task t ~my task;
          drain ()
        | None -> ()
      in
      drain ();
      (* Our deque is empty and we push nothing more: the slot can be
         recycled while we wait for ranges that thieves took. *)
      release_slot t my;
      Mutex.lock b.bm;
      while Atomic.get b.remaining > 0 do
        Condition.wait b.bc b.bm
      done;
      Mutex.unlock b.bm);
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map
      (function Some v -> v | None -> assert false (* every slot ran *))
      results
  end

let map_list ?chunk ?timeout t f l =
  Array.to_list (map ?chunk ?timeout t f (Array.of_list l))

let run ?jobs ?chunk ?timeout f arr =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  if n_jobs <= 1 || Array.length arr <= 1 then
    Array.mapi (fun i x -> timed ?timeout ~index:i f x) arr
  else with_pool ~jobs:n_jobs (fun t -> map ?chunk ?timeout t f arr)

let run_local ?jobs ?chunk ?timeout ~init f arr =
  let n_jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  if n_jobs <= 1 || Array.length arr <= 1 then begin
    let state = init () in
    Array.mapi (fun i x -> timed ?timeout ~index:i (f state) x) arr
  end
  else
    with_pool ~jobs:n_jobs (fun t ->
        (* One scratch state per participating domain, created lazily on
           the domain's first claim.  The key is fresh per call, so
           states never leak between batches. *)
        let key = Domain.DLS.new_key init in
        map ?chunk ?timeout t (fun x -> f (Domain.DLS.get key) x) arr)
