(* Return messages larger than the input (z > 1): the paper's
   cryptographic-key scenario.

   The introduction of the paper motivates z > 1 with a master that
   scatters a few bytes of control instructions and receives large
   generated key files back.  Theorem 1 then applies through the mirror
   argument: read the schedule backwards in time and the roles of c and
   d swap, so initial messages go out by NON-INCREASING c.

   Run with:  dune exec examples/crypto_keygen.exe                    *)

module Q = Numeric.Rational

let () =
  (* Instructions are tiny (c small), generated key bundles are 8x
     larger (z = 8); workers differ in both link speed and compute
     power. *)
  let z = Q.of_int 8 in
  let platform =
    Dls.Platform.with_return_ratio ~z
      [
        (Q.of_ints 1 10, Q.of_int 2) (* P1: fast link, average CPU *);
        (Q.of_ints 3 10, Q.of_int 1) (* P2: slow link, fast CPU *);
        (Q.of_ints 1 5, Q.of_int 3) (* P3: medium link, slow CPU *);
        (Q.of_ints 2 5, Q.of_int 1) (* P4: slowest link, fast CPU *);
      ]
  in
  Format.printf "Key-generation platform (z = %s):@.%a@." (Q.to_string z)
    Dls.Platform.pp platform;

  (* Theorem 1 (mirrored, z > 1): serve workers by non-increasing c. *)
  let order = Dls.Fifo.order platform in
  Format.printf "FIFO sending order: %s@."
    (String.concat " "
       (Array.to_list
          (Array.map (fun i -> (Dls.Platform.get platform i).Dls.Platform.name) order)));

  let sol = Dls.Fifo.optimal platform in
  Format.printf "%a@." Dls.Lp_model.pp sol;

  (* Cross-check via the explicit mirror construction: solve the swapped
     platform (c <-> d, so z' = 1/8 < 1) and flip the schedule in time. *)
  let { Dls.Fifo.solved = mirror_solved; schedule = mirrored_schedule } =
    Dls.Fifo.optimal_via_mirror_exn platform
  in
  let rho_mirror = mirror_solved.Dls.Lp_model.rho in
  Format.printf "mirror construction agrees: %b@."
    (Q.equal rho_mirror sol.Dls.Lp_model.rho);
  (match Dls.Schedule.validate mirrored_schedule with
  | Ok () -> Format.printf "mirrored schedule is a valid one-port schedule@."
  | Error msgs -> List.iter (Format.printf "INVALID: %s@.") msgs);
  print_newline ();
  print_string (Sim.Gantt.render_schedule mirrored_schedule);
  print_newline ();

  (* Compare against the naive ascending order: with z > 1 it is
     strictly worse whenever link speeds differ. *)
  let ascending =
    Dls.Platform.sorted_indices_by platform (fun wk -> wk.Dls.Platform.c)
  in
  let naive = Dls.Fifo.solve_order platform ascending in
  Format.printf
    "descending-c throughput %s vs ascending-c %s: mirror order wins by %.2f%%@."
    (Q.to_string sol.Dls.Lp_model.rho)
    (Q.to_string naive.Dls.Lp_model.rho)
    (100.0
    *. ((Q.to_float sol.Dls.Lp_model.rho /. Q.to_float naive.Dls.Lp_model.rho)
       -. 1.0))
