(* Resource selection: with return messages, the best FIFO schedule may
   deliberately leave workers unused — in sharp contrast with classical
   divisible-load results where everybody always participates.

   This walks through the paper's Section 5.3.4 experiment (Figure 14)
   and a distilled 2-worker instance showing WHY a worker gets dropped.

   Run with:  dune exec examples/resource_selection.exe               *)

module Q = Numeric.Rational

let () =
  (* --- A minimal instance ------------------------------------------ *)
  (* P2's return message is so expensive that every item it processes
     eats into P1's deadline (P1 must wait for P2's return to fit before
     the horizon).  The LP discovers that enrolling P2 at all lowers
     total throughput. *)
  let platform =
    Dls.Platform.make_exn
      [
        Dls.Platform.worker ~name:"P1" ~c:Q.one ~w:Q.one ~d:Q.half ();
        Dls.Platform.worker ~name:"P2" ~c:(Q.of_int 100) ~w:Q.one ~d:(Q.of_int 50) ();
      ]
  in
  let both = Dls.Fifo.optimal platform in
  Format.printf "2-worker instance:@.%a@." Dls.Lp_model.pp both;
  Format.printf "workers enrolled: %d of 2@.@."
    (List.length (Dls.Lp_model.enrolled_workers both));

  (* --- The paper's Figure 14 --------------------------------------- *)
  (* Workers 1-3 are fast; worker 4 is slow in both dimensions, with
     communication speed-up x.  For x = 1 it must be refused; for x = 3
     enrolling it is (barely) worth it. *)
  List.iter
    (fun x ->
      Format.printf "Figure 14 platform with x = %d:@." x;
      let comm = [| 10; 8; 8; x |] and comp = [| 9; 9; 10; 1 |] in
      List.iter
        (fun available ->
          let p =
            Cluster.Workload.platform Cluster.Workload.gdsdmi ~n:400
              ~comm:(Array.sub comm 0 available)
              ~comp:(Array.sub comp 0 available)
          in
          let sol = Dls.Fifo.optimal p in
          let time =
            Q.to_float (Dls.Lp_model.time_for_load sol ~load:(Q.of_int 1000))
          in
          Format.printf
            "  %d worker(s) available -> %d enrolled, 1000 products in %.2f s@."
            available
            (List.length (Dls.Lp_model.enrolled_workers sol))
            time)
        [ 1; 2; 3; 4 ];
      print_newline ())
    [ 1; 3 ];

  (* --- Contrast: on a bus, everyone always participates ------------- *)
  let bus =
    Dls.Platform.bus ~c:Q.one ~d:Q.half
      [ Q.one; Q.of_int 3; Q.of_int 10; Q.of_int 50 ]
  in
  let sol = Dls.Fifo.optimal bus in
  Format.printf
    "bus cross-check (Theorem 2): %d of 4 workers enrolled, rho = %s@."
    (List.length (Dls.Lp_model.enrolled_workers sol))
    (Q.to_string sol.Dls.Lp_model.rho)
