(* The open problem: what is the best pair of permutations?

   The paper closes with a conjecture: finding the jointly optimal
   (sigma1, sigma2) — the orders of initial and return messages — is
   probably NP-hard, and only the fixed disciplines (FIFO, LIFO) are
   solved.  This example explores the question experimentally on small
   platforms, where exhaustive search is still feasible:

     - how often is the optimal FIFO (Theorem 1) already globally
       optimal?
     - how large can the gap get?
     - what do the best general permutation pairs look like?

   Run with:  dune exec examples/open_problem.exe                     *)

module Q = Numeric.Rational

let describe platform (sol : Dls.Lp_model.solved) =
  let name i = (Dls.Platform.get platform i).Dls.Platform.name in
  let order a = String.concat " " (Array.to_list (Array.map name a)) in
  Printf.sprintf "sends: %s | returns: %s"
    (order sol.Dls.Lp_model.scenario.Dls.Scenario.sigma1)
    (order sol.Dls.Lp_model.scenario.Dls.Scenario.sigma2)

let () =
  let rng = Cluster.Prng.create ~seed:42 in
  let trials = 20 in
  let fifo_optimal = ref 0 and lifo_optimal = ref 0 in
  let worst_gap = ref 1.0 in
  let worst_example = ref None in
  Format.printf
    "Searching all (sigma1, sigma2) pairs on %d random 4-worker platforms...@.@."
    trials;
  for _ = 1 to trials do
    let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:4 in
    let p = Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:150 f in
    let fifo = Dls.Fifo.optimal p in
    let lifo = Dls.Lifo.optimal p in
    let best = Dls.Brute.best_general p in
    if Q.equal fifo.Dls.Lp_model.rho best.Dls.Lp_model.rho then incr fifo_optimal;
    if Q.equal lifo.Dls.Lp_model.rho best.Dls.Lp_model.rho then incr lifo_optimal;
    let gap =
      Q.to_float fifo.Dls.Lp_model.rho /. Q.to_float best.Dls.Lp_model.rho
    in
    if gap < !worst_gap then begin
      worst_gap := gap;
      worst_example := Some (p, fifo, lifo, best)
    end
  done;
  Format.printf "optimal FIFO is globally optimal on %d/%d platforms@."
    !fifo_optimal trials;
  Format.printf "optimal LIFO is globally optimal on %d/%d platforms@."
    !lifo_optimal trials;
  Format.printf "worst FIFO/best ratio seen: %.4f@.@." !worst_gap;
  (match !worst_example with
  | None -> ()
  | Some (p, fifo, lifo, best) ->
    Format.printf "The platform with the largest FIFO gap:@.%a@." Dls.Platform.pp p;
    Format.printf "  optimal FIFO: rho ~ %.6g  (%s)@."
      (Q.to_float fifo.Dls.Lp_model.rho)
      (describe p fifo);
    Format.printf "  optimal LIFO: rho ~ %.6g  (%s)@."
      (Q.to_float lifo.Dls.Lp_model.rho)
      (describe p lifo);
    Format.printf "  best general: rho ~ %.6g  (%s)@.@."
      (Q.to_float best.Dls.Lp_model.rho)
      (describe p best);
    Format.printf
      "Note how the best general schedule decouples the two orders — the@.\
       combinatorial freedom the paper could not tame analytically.@.");
  (* A concrete hand-analyzable micro-instance. *)
  let p =
    Dls.Platform.make_exn
      [
        Dls.Platform.worker ~name:"fastC" ~c:Q.one ~w:(Q.of_int 4) ~d:Q.half ();
        Dls.Platform.worker ~name:"slowC" ~c:(Q.of_int 2) ~w:Q.one ~d:Q.one ();
      ]
  in
  let all = Dls.Brute.permutations 2 in
  Format.printf "All four scenarios of a 2-worker instance:@.";
  List.iter
    (fun sigma1 ->
      List.iter
        (fun sigma2 ->
          let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.make_exn p ~sigma1 ~sigma2) in
          Format.printf "  %-44s rho = %s (~%.5f)@." (describe p sol)
            (Q.to_string sol.Dls.Lp_model.rho)
            (Q.to_float sol.Dls.Lp_model.rho))
        all)
    all
