(* Command-line interface to the divisible-load scheduling library.

   Subcommands:
     solve       optimal FIFO/LIFO schedule on a platform (Theorem 1)
     solve-multi steady-state / batch schedules for a mix of loads
     bus         Theorem 2 closed form on a bus network
     gantt       render a schedule as an ASCII (or SVG) Gantt chart
     simulate    execute a campaign on the simulated cluster
     brute       exhaustive search over message orderings
     search      branch-and-bound best FIFO order (non-uniform z)
     multiround  multi-installment schedules, optional latencies
     tree        divisible loads on tree networks (no-return baseline)
     affine      optimal FIFO with per-message start-up latencies
     sensitivity exact throughput sensitivity to each parameter
     faults      generate/validate deterministic fault-injection plans
     check       exact validation: schedules, traces, differential fuzzing
     lp-dump     print a scheduling LP in LP-file format
     experiment  regenerate one of the paper's figures
     platform    generate a random matrix-product platform            *)

module Q = Numeric.Rational
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Platform specifications                                             *)
(* ------------------------------------------------------------------ *)

(* "c:w:d,c:w:d,..." with rational components ("1/2", "0.25", "3"). *)
let parse_spec s =
  let parse_worker i part =
    match String.split_on_char ':' (String.trim part) with
    | [ c; w; d ] ->
      Dls.Platform.worker
        ~name:(Printf.sprintf "P%d" (i + 1))
        ~c:(Q.of_string c) ~w:(Q.of_string w) ~d:(Q.of_string d) ()
    | _ -> failwith (Printf.sprintf "worker %d: expected c:w:d, got %S" (i + 1) part)
  in
  Dls.Platform.make_exn (List.mapi parse_worker (String.split_on_char ',' s))

let platform_conv =
  let parse s =
    match parse_spec s with
    | p -> Ok p
    | exception (Failure msg | Invalid_argument msg) -> Error (`Msg msg)
  in
  let print fmt p = Dls.Platform.pp fmt p in
  Arg.conv (parse, print)

let platform_arg =
  let spec =
    let doc =
      "Platform specification: comma-separated workers, each $(b,c:w:d) with \
       rational components, e.g. $(b,1:1:1/2,1:2:1/2)."
    in
    Arg.(value & opt (some platform_conv) None & info [ "p"; "platform" ] ~doc)
  in
  let file =
    let doc = "Read the platform from $(docv) (one 'name c w d' line per worker)." in
    Arg.(value & opt (some string) None & info [ "f"; "platform-file" ] ~docv:"FILE" ~doc)
  in
  let combine spec file =
    match (spec, file) with
    | Some p, None -> Ok p
    | None, Some path -> (
      match Dls.Platform_io.read path with
      | Ok p -> Ok p
      | Error e -> Error (`Msg (Dls.Errors.to_string e)))
    | Some _, Some _ -> Error (`Msg "give either --platform or --platform-file")
    | None, None -> Error (`Msg "a platform is required (--platform or --platform-file)")
  in
  Term.(term_result (const combine $ spec $ file))

let rational_conv =
  let parse s =
    match Q.of_string s with
    | q -> Ok q
    | exception _ -> Error (`Msg (Printf.sprintf "not a rational: %S" s))
  in
  Arg.conv (parse, fun fmt q -> Q.pp fmt q)

let model_arg =
  let doc = "Communication model: $(b,one-port) or $(b,two-port)." in
  Arg.(
    value
    & opt (enum [ ("one-port", Dls.Lp_model.One_port); ("two-port", Dls.Lp_model.Two_port) ])
        Dls.Lp_model.One_port
    & info [ "model" ] ~doc)

let discipline_arg =
  let doc = "Message ordering discipline: $(b,fifo) or $(b,lifo)." in
  Arg.(value & opt (enum [ ("fifo", `Fifo); ("lifo", `Lifo) ]) `Fifo & info [ "discipline" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for parallel evaluation (default: number of cores). \
     Results are bit-identical to $(b,--jobs=1)."
  in
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let load_arg =
  let doc = "Total load (number of items); reports the makespan for it." in
  Arg.(value & opt (some rational_conv) None & info [ "load" ] ~doc)

let print_solution ?load sol =
  Format.printf "%a@." Dls.Lp_model.pp sol;
  (match load with
  | Some load ->
    Format.printf "makespan for %s items: %s (~%.6g)@." (Q.to_string load)
      (Q.to_string (Dls.Lp_model.time_for_load sol ~load))
      (Q.to_float (Dls.Lp_model.time_for_load sol ~load))
  | None -> ());
  let sched = Dls.Schedule.of_solved sol in
  match Dls.Schedule.validate sched with
  | Ok () -> ()
  | Error msgs ->
    Format.printf "WARNING: schedule validation failed:@.";
    List.iter (Format.printf "  %s@.") msgs

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let solve_cmd =
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Also report which LP constraints bind (deadlines vs port).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-schedule" ] ~docv:"FILE"
          ~doc:
            "Write the schedule to $(docv) in the exact text format of \
             $(b,dls check --schedule).")
  in
  let run platform discipline model load explain dump fast delta stats =
    if stats then Dls.Lp_model.reset_pipeline_stats ();
    let scenario_of p =
      match discipline with
      | `Fifo -> Dls.Scenario.fifo_exn p (Dls.Fifo.order p)
      | `Lifo -> Dls.Scenario.lifo_exn p (Dls.Lifo.order p)
    in
    let sol =
      match delta with
      | Some d ->
        (* Incremental what-if: solve the base through the cache, apply
           the delta to its scenario (sending order kept when the worker
           count is unchanged), and re-solve through the cache so the
           warm-repair path can start from the base's optimal basis. *)
        Dls.Lp_model.reset_resolve_stats ();
        let base = Dls.Solve.solve_exn ~mode:`Cached ~model (scenario_of platform) in
        Format.printf "base rho = %s (~%.6g)@." (Q.to_string base.Dls.Lp_model.rho)
          (Q.to_float base.Dls.Lp_model.rho);
        Format.printf "delta: %a@." (Dls.Delta.pp platform) d;
        let scenario' =
          match Dls.Delta.apply_scenario base.Dls.Lp_model.scenario d with
          | Ok s -> s
          | Error e -> raise (Dls.Errors.Error e)
        in
        Dls.Solve.solve_exn ~mode:`Cached ~model scenario'
      | None ->
        if fast then Dls.Solve.solve_exn ~mode:`Fast ~model (scenario_of platform)
        else (
          match discipline with
          | `Fifo -> Dls.Fifo.optimal ~model platform
          | `Lifo -> Dls.Lifo.optimal ~model platform)
    in
    print_solution ?load sol;
    if delta <> None then
      Format.printf "resolve:@.%a@." Dls.Lp_model.pp_resolve_stats
        (Dls.Lp_model.resolve_stats ());
    if stats then begin
      Format.printf "pipeline:@.%a@." Dls.Lp_model.pp_pipeline_stats
        (Dls.Lp_model.pipeline_stats ());
      let cs = Dls.Lp_model.cache_stats () in
      Format.printf "cache: %d hits, %d misses, %d evictions@." cs.Parallel.Lru.hits
        cs.Parallel.Lru.misses cs.Parallel.Lru.evictions
    end;
    (match dump with
    | None -> ()
    | Some file ->
      Dls.Schedule_io.write file (Dls.Schedule.of_solved sol);
      Format.printf "schedule written to %s@." file);
    if explain then begin
      Format.printf "constraints:@.";
      List.iter
        (fun st ->
          Format.printf "  %-16s %s  slack = %s (~%.4g)@."
            st.Dls.Lp_model.label
            (if st.Dls.Lp_model.binding then "BINDING " else "slack   ")
            (Q.to_string st.Dls.Lp_model.slack)
            (Q.to_float st.Dls.Lp_model.slack))
        (Dls.Lp_model.constraint_report sol)
    end
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Solve through the certified fast LP pipeline (float simplex + \
             one exact basis factorization, exact fallback).  Bit-identical \
             to the default exact solve.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print fast-pipeline counters (float-path wins, warm-start wins, \
             exact fallbacks, pruned nodes) and solve-cache statistics.")
  in
  let delta_arg =
    let delta_conv =
      Arg.conv
        ( (fun s ->
            match Dls.Delta.of_spec ~line:1 ~col:1 s with
            | Ok d -> Ok d
            | Error e -> Error (`Msg (Dls.Errors.to_string e))),
          fun fmt d -> Format.pp_print_string fmt (Dls.Delta.to_spec d) )
    in
    Arg.(
      value
      & opt (some delta_conv) None
      & info [ "delta" ] ~docv:"SPEC"
          ~doc:
            "Solve the platform, then re-solve it with the comma-separated \
             changes applied: $(b,comm:I:F) / $(b,comp:I:F) scale worker \
             $(i,I)'s link or compute speed by rational $(i,F), $(b,z:Q) \
             sets the return ratio, $(b,add:C:W:D) appends a worker, \
             $(b,drop:I) removes one (1-based indices).  The re-solve goes \
             through the incremental warm-repair pipeline and reports its \
             counters.")
  in
  let doc = "compute the optimal FIFO or LIFO schedule (Theorem 1)" in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const run $ platform_arg $ discipline_arg $ model_arg $ load_arg
      $ explain_arg $ dump_arg $ fast_arg $ delta_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* solve-multi                                                         *)
(* ------------------------------------------------------------------ *)

let solve_multi_cmd =
  let workload_arg =
    let workload_conv =
      Arg.conv
        ( (fun s ->
            match Dls.Workload.of_spec ~line:1 ~col:1 s with
            | Ok w -> Ok w
            | Error e -> Error (`Msg (Dls.Errors.to_string e))),
          fun fmt w -> Format.pp_print_string fmt (Dls.Workload.to_spec w) )
    in
    Arg.(
      required
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"SPEC"
          ~doc:
            "Workload specification: comma-separated loads, each \
             $(b,size:release) or $(b,size:release:z) with rational \
             components, e.g. $(b,5:0,3:1/2:2).  A per-load $(b,z) \
             overrides the platform's return ratio for that load.")
  in
  let batch_arg =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Schedule the finite batch (release dates honored) instead of \
             computing the steady-state period.")
  in
  let depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Fix the batch interleave depth (with $(b,--batch); default: \
             best over depths 0..2).")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Replay the batch on the simulated cluster (with $(b,--batch)) \
             and report the observed makespan and trace validity.")
  in
  let run platform workload batch depth replay =
    if batch then begin
      let b =
        Dls.Errors.get_exn
          (match depth with
          | Some depth -> Dls.Steady_state.solve_batch ~depth platform workload
          | None -> Dls.Steady_state.solve_batch_best platform workload)
      in
      Format.printf "%a@." Dls.Steady_state.pp_batch b;
      (match
         Check.Validator.errors_of_result platform
           (Check.Validator.validate_batch b)
       with
      | Ok () -> Format.printf "validation: OK@."
      | Error msgs ->
        Format.printf "WARNING: batch validation failed:@.";
        List.iter (Format.printf "  %s@.") msgs);
      if replay then begin
        let trace = Sim.Star.execute_multi platform (Sim.Star.plan_of_batch b) in
        Format.printf "replay: makespan %.6g (LP %.6g), trace %s@."
          trace.Sim.Trace.makespan
          (Q.to_float b.Dls.Steady_state.makespan)
          (if Sim.Trace.is_valid trace then "valid" else "INVALID")
      end
    end
    else begin
      if depth <> None || replay then begin
        prerr_endline "dls: --depth and --replay require --batch";
        exit 2
      end;
      let s = Dls.Steady_state.solve_exn platform workload in
      Format.printf "%a@." Dls.Steady_state.pp s;
      match Dls.Steady_state.naive_makespan platform workload with
      | Error _ -> ()
      | Ok naive ->
        Format.printf
          "back-to-back baseline: one mix every %s (~%.6g); steady state \
           saves %s per period@."
          (Q.to_string naive) (Q.to_float naive)
          (Q.to_string (Q.sub naive s.Dls.Steady_state.period))
    end
  in
  let doc = "steady-state and batch schedules for a mix of loads" in
  let man =
    [
      `S Manpage.s_examples;
      `P "Optimal period for two loads released together:";
      `Pre "  dls solve-multi -p 1:1:1/2,1:2:1/2 -w 5:0,3:0";
      `P "Finite batch with a staggered release and a fixed depth, replayed:";
      `Pre "  dls solve-multi -p 1:1:1/2,1:2:1/2 -w 5:0,3:1/2 --batch --replay";
    ]
  in
  Cmd.v
    (Cmd.info "solve-multi" ~doc ~man)
    Term.(
      const run $ platform_arg $ workload_arg $ batch_arg $ depth_arg
      $ replay_arg)

(* ------------------------------------------------------------------ *)
(* bus                                                                 *)
(* ------------------------------------------------------------------ *)

let bus_cmd =
  let c_arg =
    Arg.(required & opt (some rational_conv) None & info [ "c" ] ~doc:"Link cost c.")
  in
  let d_arg =
    Arg.(required & opt (some rational_conv) None & info [ "d" ] ~doc:"Return cost d.")
  in
  let w_arg =
    let doc = "Comma-separated worker compute costs." in
    Arg.(required & opt (some string) None & info [ "w" ] ~doc)
  in
  let run c d w_spec =
    let ws =
      Array.of_list (List.map Q.of_string (String.split_on_char ',' w_spec))
    in
    let rho = Dls.Closed_form.fifo_throughput ~c ~d ws in
    let rho2 = Dls.Closed_form.two_port_throughput ~c ~d ws in
    Format.printf "one-port FIFO throughput (Theorem 2): %s (~%.6g)@."
      (Q.to_string rho) (Q.to_float rho);
    Format.printf "two-port bound rho~: %s (~%.6g)@." (Q.to_string rho2)
      (Q.to_float rho2);
    Format.printf "port saturation bound 1/(c+d): %s (~%.6g)@."
      (Q.to_string (Q.inv (Q.add c d)))
      (Q.to_float (Q.inv (Q.add c d)));
    let p = Dls.Platform.bus ~c ~d (Array.to_list ws) in
    let lp = Dls.Fifo.optimal p in
    Format.printf "LP cross-check: %s (%s)@."
      (Q.to_string lp.Dls.Lp_model.rho)
      (if Q.equal lp.Dls.Lp_model.rho rho then "exact match" else "MISMATCH")
  in
  let doc = "closed-form optimal FIFO throughput on a bus (Theorem 2)" in
  Cmd.v (Cmd.info "bus" ~doc) Term.(const run $ c_arg $ d_arg $ w_arg)

(* ------------------------------------------------------------------ *)
(* gantt                                                               *)
(* ------------------------------------------------------------------ *)

let gantt_cmd =
  let width_arg =
    Arg.(value & opt int 72 & info [ "width" ] ~doc:"Chart width in columns.")
  in
  let svg_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Additionally write an SVG chart to $(docv).")
  in
  let run platform discipline model width svg =
    let sol =
      match discipline with
      | `Fifo -> Dls.Fifo.optimal ~model platform
      | `Lifo -> Dls.Lifo.optimal ~model platform
    in
    let sched = Dls.Schedule.of_solved sol in
    print_string (Sim.Gantt.render_schedule ~width sched);
    match svg with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Sim.Gantt.render_schedule_svg sched);
      close_out oc;
      Format.printf "SVG written to %s@." file
  in
  let doc = "render the optimal schedule as an ASCII Gantt chart" in
  Cmd.v
    (Cmd.info "gantt" ~doc)
    Term.(
      const run $ platform_arg $ discipline_arg $ model_arg $ width_arg $ svg_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let items_arg =
    Arg.(value & opt int 1000 & info [ "items" ] ~doc:"Campaign size (items).")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Noise seed.") in
  let noisy_arg =
    Arg.(value & flag & info [ "noisy" ] ~doc:"Apply the calibrated noise model.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"FILE"
          ~doc:
            "Inject the fault plan in $(docv) (see $(b,dls faults)) and \
             report the perturbed execution: achieved load, deadline slack, \
             per-worker lateness.")
  in
  let replan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replan" ] ~docv:"POLICY"
          ~doc:
            "React to $(b,--faults) online with one recovery policy: \
             $(b,resolve), $(b,drop-faulty), $(b,margin[:M]), or $(b,none) \
             to measure the unrecovered baseline.  Default: try every \
             policy and keep the best outcome (never worse than \
             $(b,none)).")
  in
  let die fmt = Format.kasprintf (fun s -> prerr_endline ("dls: " ^ s); exit 1) fmt in
  let run_faulted platform sol items path replan =
    let plan =
      match Dls.Faults.read path with
      | Ok plan -> plan
      | Error e -> die "%s" (Dls.Errors.to_string e)
    in
    (match Dls.Faults.validate_for platform plan with
    | Ok () -> ()
    | Error e -> die "%s: %s" path (Dls.Errors.to_string e));
    let policies =
      match replan with
      | None -> Dls.Replan.default_policies
      | Some "none" -> []
      | Some s -> (
        match Dls.Replan.policy_of_string s with
        | Some p -> [ p ]
        | None -> die "unknown recovery policy %S" s)
    in
    let load = Q.of_int items in
    let outcome =
      match Dls.Replan.respond ~policies plan sol ~load with
      | Ok o -> o
      | Error e -> die "%s" (Dls.Errors.to_string e)
    in
    Format.printf "%a@." Dls.Replan.pp_outcome outcome;
    let original = Dls.Schedule.for_load sol ~load in
    match
      Sim.Faults.execute_decision platform plan ~original
        ~decision:outcome.Dls.Replan.decision
    with
    | Error e -> die "%s" (Dls.Errors.to_string e)
    | Ok trace ->
      let m =
        Sim.Faults.metrics
          ~deadline:(Q.to_float outcome.Dls.Replan.deadline)
          ~total:(Q.to_float load) trace
      in
      Format.printf "simulated execution:@.  @[%a@]@." Sim.Faults.pp_metrics m;
      print_string
        (Sim.Gantt.render
           ~names:(fun i -> (Dls.Platform.get platform i).Dls.Platform.name)
           trace)
  in
  let run platform discipline model items seed noisy faults replan =
    let sol =
      match discipline with
      | `Fifo -> Dls.Fifo.optimal ~model platform
      | `Lifo -> Dls.Lifo.optimal ~model platform
    in
    match faults with
    | Some path ->
      if noisy then
        prerr_endline "dls: note: --noisy is ignored when injecting faults";
      run_faulted platform sol items path replan
    | None ->
      let plan = Sim.Star.plan_of_rounded sol ~total:items in
      let noise =
        if noisy then
          Cluster.Noise.make (Cluster.Prng.create ~seed) ~n:100
        else Sim.Star.no_noise
      in
      let trace = Sim.Star.execute ~noise platform plan in
      let lp_time =
        Q.to_float (Dls.Lp_model.time_for_load sol ~load:(Q.of_int items))
      in
      Format.printf "LP-predicted makespan: %.6g@." lp_time;
      Format.printf "simulated makespan:    %.6g (%.2f%% above LP)@."
        trace.Sim.Trace.makespan
        (100.0 *. ((trace.Sim.Trace.makespan /. lp_time) -. 1.0));
      Format.printf "trace valid: %b@." (Sim.Trace.is_valid trace);
      print_string
        (Sim.Gantt.render
           ~names:(fun i -> (Dls.Platform.get platform i).Dls.Platform.name)
           trace)
  in
  let doc = "simulate a campaign on the platform (one-port master protocol)" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ platform_arg $ discipline_arg $ model_arg $ items_arg
      $ seed_arg $ noisy_arg $ faults_arg $ replan_arg)

(* ------------------------------------------------------------------ *)
(* brute                                                               *)
(* ------------------------------------------------------------------ *)

let brute_cmd =
  let general_arg =
    Arg.(
      value & flag
      & info [ "general" ]
          ~doc:"Search all (sigma1, sigma2) pairs, not only FIFO and LIFO.")
  in
  let run platform model general jobs =
    let n = Dls.Platform.size platform in
    if n > 6 then
      Format.printf "warning: %d! permutations, this may take a while@." n;
    let fifo = Dls.Brute.best_fifo ~model ~jobs platform in
    let lifo = Dls.Brute.best_lifo ~model ~jobs platform in
    Format.printf "best FIFO: rho = %s (~%.6g)@."
      (Q.to_string fifo.Dls.Lp_model.rho)
      (Q.to_float fifo.Dls.Lp_model.rho);
    Format.printf "best LIFO: rho = %s (~%.6g)@."
      (Q.to_string lifo.Dls.Lp_model.rho)
      (Q.to_float lifo.Dls.Lp_model.rho);
    if general then begin
      let best = Dls.Brute.best_general ~model ~jobs platform in
      Format.printf "best (sigma1, sigma2): rho = %s (~%.6g)@."
        (Q.to_string best.Dls.Lp_model.rho)
        (Q.to_float best.Dls.Lp_model.rho);
      Format.printf "%a@." Dls.Lp_model.pp best
    end
  in
  let doc = "exhaustive search over message orderings (small platforms)" in
  Cmd.v
    (Cmd.info "brute" ~doc)
    Term.(const run $ platform_arg $ model_arg $ general_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    let doc =
      Printf.sprintf "Experiment id; one of: %s, or $(b,all)."
        (String.concat ", " (Experiments.Registry.ids ()))
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sweeps for a fast run.")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of tables.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of tables.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write each table as $(docv)/<id>.csv.")
  in
  let run id quick jobs csv json out =
    let entries =
      if id = "all" then Experiments.Registry.all
      else
        match Experiments.Registry.find id with
        | e -> [ e ]
        | exception Not_found ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " (Experiments.Registry.ids ()));
          exit 2
    in
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    List.iter
      (fun e ->
        List.iter
          (fun report ->
            if json then print_endline (Experiments.Report.to_json report)
            else if csv then print_string (Experiments.Report.to_csv report)
            else Experiments.Report.print report;
            match out with
            | None -> ()
            | Some dir ->
              let path =
                Filename.concat dir (report.Experiments.Report.id ^ ".csv")
              in
              let oc = open_out path in
              output_string oc (Experiments.Report.to_csv report);
              close_out oc)
          (e.Experiments.Registry.run ~quick ~jobs))
      entries
  in
  let doc = "regenerate one of the paper's figures (or 'all')" in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(const run $ id_arg $ quick_arg $ jobs_arg $ csv_arg $ json_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* platform                                                            *)
(* ------------------------------------------------------------------ *)

let platform_cmd =
  let scenario_arg =
    let doc = "Heterogeneity family: $(b,hom), $(b,homcomm) or $(b,het)." in
    Arg.(
      value
      & opt
          (enum
             [
               ("hom", Cluster.Gen.Homogeneous);
               ("homcomm", Cluster.Gen.Hom_comm_het_comp);
               ("het", Cluster.Gen.Heterogeneous);
             ])
          Cluster.Gen.Heterogeneous
      & info [ "scenario" ] ~doc)
  in
  let workers_arg =
    Arg.(value & opt int 11 & info [ "workers" ] ~doc:"Number of workers.")
  in
  let n_arg = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Matrix size.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run scenario workers n seed =
    let rng = Cluster.Prng.create ~seed in
    let f = Cluster.Gen.factors rng scenario ~workers in
    let p = Cluster.Gen.platform Cluster.Workload.gdsdmi ~n f in
    Format.printf "%a@." Dls.Platform.pp p;
    (* Also print the spec string, ready to feed back into `solve -p`. *)
    let spec =
      String.concat ","
        (List.init workers (fun i ->
             let wk = Dls.Platform.get p i in
             Printf.sprintf "%s:%s:%s"
               (Q.to_string wk.Dls.Platform.c)
               (Q.to_string wk.Dls.Platform.w)
               (Q.to_string wk.Dls.Platform.d)))
    in
    Format.printf "spec: %s@." spec
  in
  let doc = "generate a random matrix-product platform" in
  Cmd.v
    (Cmd.info "platform" ~doc)
    Term.(const run $ scenario_arg $ workers_arg $ n_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* search                                                              *)
(* ------------------------------------------------------------------ *)

let search_cmd =
  let run platform discipline model jobs =
    let { Dls.Search.solved = sol; stats } =
      match discipline with
      | `Fifo -> Dls.Search.best_fifo ~model ~jobs platform
      | `Lifo -> Dls.Search.best_lifo ~model ~jobs platform
    in
    Format.printf "%a@." Dls.Lp_model.pp sol;
    Format.printf "search: %d nodes, %d pruned subtrees, %d exact LPs solved@."
      stats.Dls.Search.nodes stats.Dls.Search.pruned stats.Dls.Search.lps;
    let heuristic =
      match discipline with
      | `Fifo -> Dls.Fifo.optimal ~model platform
      | `Lifo -> Dls.Lifo.optimal ~model platform
    in
    if Q.equal heuristic.Dls.Lp_model.rho sol.Dls.Lp_model.rho then
      Format.printf
        "the ascending-c heuristic order is certified optimal for this platform@."
    else
      Format.printf
        "the ascending-c heuristic is NOT optimal here (heuristic %s < optimum %s)@."
        (Q.to_string heuristic.Dls.Lp_model.rho)
        (Q.to_string sol.Dls.Lp_model.rho)
  in
  let doc =
    "branch-and-bound: exact best FIFO or LIFO order (works outside Theorem \
     1's uniform-ratio hypothesis)"
  in
  Cmd.v
    (Cmd.info "search" ~doc)
    Term.(const run $ platform_arg $ discipline_arg $ model_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* multiround                                                          *)
(* ------------------------------------------------------------------ *)

let multiround_cmd =
  let rounds_arg =
    Arg.(value & opt int 1 & info [ "rounds" ] ~doc:"Number of rounds.")
  in
  let max_rounds_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sweep" ] ~docv:"R"
          ~doc:"Sweep round counts 1..$(docv) and print the throughputs.")
  in
  let latency_arg =
    Arg.(
      value
      & opt rational_conv Q.zero
      & info [ "latency" ] ~doc:"Per-message start-up latency (affine model).")
  in
  let run platform rounds max_rounds latency =
    let order = Dls.Fifo.order platform in
    match max_rounds with
    | Some max_rounds ->
      let sweep =
        Dls.Multiround.sweep_rounds platform ~send_latency:latency
          ~return_latency:latency ~order ~max_rounds ()
      in
      Format.printf "rounds  throughput@.";
      List.iter
        (fun { Dls.Multiround.rounds = r; throughput = rho } ->
          Format.printf "%6d  %s (~%.6g)@." r (Q.to_string rho) (Q.to_float rho))
        sweep
    | None -> (
      let cfg =
        Dls.Multiround.config ~send_latency:latency ~return_latency:latency
          ~rounds order
      in
      match Dls.Multiround.solve platform cfg with
      | Dls.Multiround.Too_slow ->
        Format.printf "infeasible: the latencies alone exceed the deadline@."
      | Dls.Multiround.Solved s ->
        Format.printf "throughput with %d round(s): %s (~%.6g)@." rounds
          (Q.to_string s.Dls.Multiround.rho)
          (Q.to_float s.Dls.Multiround.rho);
        Array.iteri
          (fun r per_round ->
            Format.printf "  round %d chunks: %s@." (r + 1)
              (String.concat " "
                 (Array.to_list (Array.map Q.to_string per_round))))
          s.Dls.Multiround.chunks)
  in
  let doc = "multi-round (multi-installment) schedules" in
  Cmd.v
    (Cmd.info "multiround" ~doc)
    Term.(const run $ platform_arg $ rounds_arg $ max_rounds_arg $ latency_arg)

(* ------------------------------------------------------------------ *)
(* tree                                                                *)
(* ------------------------------------------------------------------ *)

let tree_cmd =
  let spec_arg =
    let doc =
      "Tree specification, e.g. $(b,\"(node (1 (leaf 2)) (2 (node 1 (1 (leaf 1)))))\")."
    in
    Arg.(value & opt (some string) None & info [ "t"; "tree" ] ~doc)
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tree-file" ] ~docv:"FILE" ~doc:"Read the tree from $(docv).")
  in
  let run spec file =
    let text =
      match (spec, file) with
      | Some s, None -> s
      | None, Some path ->
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      | _ ->
        prerr_endline "give exactly one of --tree or --tree-file";
        exit 2
    in
    match Dls.Tree_syntax.of_string text with
    | Error e ->
      prerr_endline ("parse error: " ^ e);
      exit 2
    | Ok tree ->
      Format.printf "%a@." Dls.Tree.pp tree;
      let rho = Dls.Tree.throughput tree in
      Format.printf "throughput: %s (~%.6g)@." (Q.to_string rho) (Q.to_float rho);
      (match Dls.Tree.validate tree with
      | Ok () -> Format.printf "schedule validates@."
      | Error msgs -> List.iter (Format.printf "INVALID: %s@.") msgs);
      List.iter
        (fun a ->
          if Q.sign a.Dls.Tree.load > 0 then
            Format.printf "  %-8s computes %-12s (recv [%s, %s])@."
              a.Dls.Tree.node_name
              (Q.to_string a.Dls.Tree.load)
              (Q.to_string a.Dls.Tree.receive_start)
              (Q.to_string a.Dls.Tree.receive_finish))
        (Dls.Tree.schedule tree)
  in
  let doc = "divisible loads on tree networks (no-return baseline)" in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const run $ spec_arg $ file_arg)

(* ------------------------------------------------------------------ *)
(* affine                                                              *)
(* ------------------------------------------------------------------ *)

let affine_cmd =
  let latency_arg =
    Arg.(
      value
      & opt rational_conv Q.zero
      & info [ "latency" ] ~doc:"Start-up latency of every message.")
  in
  let return_latency_arg =
    Arg.(
      value
      & opt (some rational_conv) None
      & info [ "return-latency" ]
          ~doc:"Start-up latency of return messages (defaults to --latency).")
  in
  let run platform latency return_latency =
    if Dls.Platform.size platform > 5 then
      Format.printf
        "warning: exhaustive subset+order search, %d workers may take a while@."
        (Dls.Platform.size platform);
    let a =
      Dls.Affine.of_platform ~send_latency:latency
        ~return_latency:(Option.value return_latency ~default:latency)
        platform
    in
    match Dls.Affine.best_fifo a with
    | Dls.Affine.Too_slow ->
      Format.printf "infeasible: latencies alone exceed the deadline@."
    | Dls.Affine.Solved s ->
      Format.printf "best FIFO throughput: %s (~%.6g)@."
        (Q.to_string s.Dls.Affine.rho)
        (Q.to_float s.Dls.Affine.rho);
      Format.printf "enrolled (%d of %d): %s@."
        (Array.length s.Dls.Affine.sigma1)
        (Dls.Platform.size platform)
        (String.concat " "
           (Array.to_list
              (Array.map
                 (fun i -> (Dls.Platform.get platform i).Dls.Platform.name)
                 s.Dls.Affine.sigma1)));
      Array.iteri
        (fun i alpha ->
          if Q.sign alpha > 0 then
            Format.printf "  %-6s alpha = %s@."
              (Dls.Platform.get platform i).Dls.Platform.name
              (Q.to_string alpha))
        s.Dls.Affine.alpha
  in
  let doc = "optimal FIFO under the affine cost model (start-up latencies)" in
  Cmd.v
    (Cmd.info "affine" ~doc)
    Term.(const run $ platform_arg $ latency_arg $ return_latency_arg)

(* ------------------------------------------------------------------ *)
(* sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let sensitivity_cmd =
  let factor_arg =
    Arg.(
      value
      & opt rational_conv (Q.of_ints 11 10)
      & info [ "factor" ] ~doc:"Scaling applied to each parameter (default 11/10).")
  in
  let run platform model factor =
    let rho = (Dls.Fifo.optimal ~model platform).Dls.Lp_model.rho in
    Format.printf "optimal FIFO throughput: %s (~%.6g)@." (Q.to_string rho)
      (Q.to_float rho);
    Format.printf "relative throughput change when scaling by %s:@."
      (Q.to_string factor);
    List.iter
      (fun (param, rel) ->
        Format.printf "  %-12s %+.4f%%@."
          (Dls.Sensitivity.parameter_to_string platform param)
          (100.0 *. Q.to_float rel))
      (Dls.Sensitivity.table ~model platform ~factor)
  in
  let doc = "exact sensitivity of the throughput to each platform parameter" in
  Cmd.v
    (Cmd.info "sensitivity" ~doc)
    Term.(const run $ platform_arg $ model_arg $ factor_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

let faults_cmd =
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Validate the fault plan in $(docv) against the platform and \
             report the degraded throughput, instead of generating one.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let severity_arg =
    Arg.(
      value
      & opt float 0.5
      & info [ "severity" ] ~docv:"X"
          ~doc:"Fault severity in [0, 1]: scales fault count and factor amplitudes.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt rational_conv Q.one
      & info [ "deadline" ] ~docv:"T"
          ~doc:"Campaign deadline the generated onsets are scaled to.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the plan to $(docv) instead of stdout.")
  in
  let die fmt = Format.kasprintf (fun s -> prerr_endline ("dls: " ^ s); exit 1) fmt in
  let summarize platform plan =
    let nominal = (Dls.Fifo.optimal platform).Dls.Lp_model.rho in
    let survivors = Dls.Faults.survivors platform plan in
    Format.printf "%d fault(s), %d of %d workers survive@."
      (List.length (Dls.Faults.faults plan))
      (List.length survivors) (Dls.Platform.size platform);
    if survivors = [] then Format.printf "degraded throughput: 0 (no survivors)@."
    else begin
      let degraded =
        Dls.Platform.restrict
          (Dls.Faults.degraded_platform platform plan)
          (Array.of_list survivors)
      in
      let rho' = (Dls.Fifo.optimal degraded).Dls.Lp_model.rho in
      Format.printf "nominal throughput:  %s (~%.6g)@." (Q.to_string nominal)
        (Q.to_float nominal);
      Format.printf "degraded throughput: %s (~%.6g, %.1f%% of nominal)@."
        (Q.to_string rho') (Q.to_float rho')
        (100.0 *. Q.to_float (Q.div rho' nominal))
    end
  in
  let run platform plan seed severity deadline out =
    match plan with
    | Some path -> (
      match Dls.Faults.read path with
      | Error e -> die "%s" (Dls.Errors.to_string e)
      | Ok plan -> (
        match Dls.Faults.validate_for platform plan with
        | Error e -> die "%s: %s" path (Dls.Errors.to_string e)
        | Ok () ->
          Format.printf "%s: OK@." path;
          summarize platform plan))
    | None -> (
      let rng = Numeric.Prng.create ~seed in
      let plan =
        Dls.Faults.gen rng
          ~workers:(Dls.Platform.size platform)
          ~deadline ~severity
      in
      match out with
      | None ->
        print_string (Dls.Faults.to_string plan);
        summarize platform plan
      | Some path ->
        Dls.Faults.write path plan;
        Format.printf "fault plan written to %s@." path;
        summarize platform plan)
  in
  let doc =
    "generate or validate deterministic fault plans for $(b,dls simulate --faults)"
  in
  Cmd.v
    (Cmd.info "faults" ~doc)
    Term.(
      const run $ platform_arg $ plan_arg $ seed_arg $ severity_arg
      $ deadline_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Validate the dumped schedule in $(docv) (exact rational \
             arithmetic, every paper invariant).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Validate the CSV execution trace in $(docv).")
  in
  let eps_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "eps" ]
          ~doc:
            "Overlap tolerance for $(b,--trace) input (floats).  The \
             default 0 is exact: touching intervals do not overlap.  Use \
             a positive tolerance only for noisy measured traces.")
  in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Differentially fuzz $(docv) random platforms per regime: all \
             solver paths must agree and every schedule must validate.")
  in
  let fuzz_faults_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz-faults" ] ~docv:"N"
          ~doc:
            "Fuzz $(docv) random fault plans per regime through the online \
             re-planner: every recovery schedule must validate exactly on \
             the degraded platform and never do worse than no recovery.")
  in
  let severity_arg =
    Arg.(
      value
      & opt float 0.6
      & info [ "severity" ] ~docv:"X"
          ~doc:"Fault severity for $(b,--fuzz-faults), in [0, 1].")
  in
  let fuzz_multi_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz-multi" ] ~docv:"N"
          ~doc:
            "Fuzz $(docv) random multi-load workloads per regime: the \
             steady-state period must validate, squeeze the batch LP on a \
             long horizon from both sides, and single-load batches must \
             reproduce the paper's LP(2) bit-exactly.")
  in
  let fuzz_resolve_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz-resolve" ] ~docv:"N"
          ~doc:
            "Fuzz $(docv) random platform deltas per regime through the \
             incremental warm-repair pipeline: every repaired basis must be \
             bit-identical to a cold exact solve (or decline and fall back \
             to the equally exact fast pipeline), and shape-changing deltas \
             must be refused.  Prints the repair counters.")
  in
  let regime_arg =
    let regime =
      Arg.conv
        ( (fun s ->
            match Check.Fuzz.regime_of_string s with
            | Some r -> Ok r
            | None -> Error (`Msg (Printf.sprintf "unknown regime %S" s))),
          fun fmt r -> Format.pp_print_string fmt (Check.Fuzz.regime_to_string r) )
    in
    Arg.(
      value
      & opt (some regime) None
      & info [ "regime" ] ~docv:"Z"
          ~doc:
            "Restrict $(b,--fuzz) / $(b,--fuzz-faults) / $(b,--fuzz-multi) / \
             $(b,--fuzz-resolve) to one return-ratio regime: $(b,z<1), \
             $(b,z=1) or $(b,z>1) (default: all three).")
  in
  let platform_opt_arg =
    let doc =
      "Self-check a platform: solve FIFO and LIFO, validate both schedules \
       and re-check the LP certificates."
    in
    Arg.(value & opt (some platform_conv) None & info [ "p"; "platform" ] ~doc)
  in
  let report label = function
    | Ok () ->
      Format.printf "%s: OK@." label;
      true
    | Error msgs ->
      Format.printf "%s: %d violation(s)@." label (List.length msgs);
      List.iter (Format.printf "  %s@.") msgs;
      false
  in
  let check_schedule path =
    match Dls.Schedule_io.read path with
    | Error e ->
      Format.printf "%s: unreadable schedule: %s@." path (Dls.Errors.to_string e);
      false
    | Ok sched ->
      report path
        (Check.Validator.errors_of_result sched.Dls.Schedule.platform
           (Check.Validator.validate sched))
  in
  let check_trace eps path =
    match Sim.Trace_io.read path with
    | Error msg ->
      Format.printf "%s: unreadable trace: %s@." path msg;
      false
    | Ok trace ->
      let overlaps = Sim.Trace.one_port_violations ~eps trace in
      let precedence = Sim.Trace.precedence_violations ~eps trace in
      let msgs =
        List.map
          (fun { Sim.Trace.first = a; second = b } ->
            Printf.sprintf "one-port violation: %s(worker %d) overlaps %s(worker %d)"
              (Sim.Trace.kind_to_string a.Sim.Trace.kind)
              a.Sim.Trace.worker
              (Sim.Trace.kind_to_string b.Sim.Trace.kind)
              b.Sim.Trace.worker)
          overlaps
        @ precedence
      in
      report path (if msgs = [] then Ok () else Error msgs)
  in
  let check_fuzz jobs count regime =
    let regimes =
      match regime with Some r -> [ r ] | None -> Check.Fuzz.all_regimes
    in
    List.for_all
      (fun r ->
        let failures = Check.Fuzz.run_matrix ~jobs ~count r in
        let label =
          Printf.sprintf "fuzz %s (%d platforms)" (Check.Fuzz.regime_to_string r)
            count
        in
        report label
          (match failures with
          | [] -> Ok ()
          | fs ->
            Error
              (List.concat_map
                 (fun f ->
                   Printf.sprintf "platform %d:" f.Check.Fuzz.index
                   :: List.map (fun m -> "  " ^ m) f.Check.Fuzz.messages
                   @ [ "  spec:" ]
                   @ List.map
                       (fun l -> "    " ^ l)
                       (String.split_on_char '\n'
                          (String.trim f.Check.Fuzz.platform)))
                 fs)))
      regimes
  in
  let check_fuzz_faults jobs count severity regime =
    let regimes =
      match regime with Some r -> [ r ] | None -> Check.Fuzz.all_regimes
    in
    List.for_all
      (fun r ->
        let failures = Check.Fuzz.run_fault_matrix ~jobs ~count ~severity r in
        let label =
          Printf.sprintf "fuzz-faults %s (%d cases, severity %.2f)"
            (Check.Fuzz.regime_to_string r) count severity
        in
        report label
          (match failures with
          | [] -> Ok ()
          | fs ->
            Error
              (List.concat_map
                 (fun f ->
                   Printf.sprintf "case %d:" f.Check.Fuzz.f_index
                   :: List.map (fun m -> "  " ^ m) f.Check.Fuzz.f_messages
                   @ [ "  platform:" ]
                   @ List.map
                       (fun l -> "    " ^ l)
                       (String.split_on_char '\n'
                          (String.trim f.Check.Fuzz.f_platform))
                   @ [ "  faults:" ]
                   @ List.map
                       (fun l -> "    " ^ l)
                       (String.split_on_char '\n'
                          (String.trim f.Check.Fuzz.f_faults)))
                 fs)))
      regimes
  in
  let check_fuzz_multi jobs count regime =
    let regimes =
      match regime with Some r -> [ r ] | None -> Check.Fuzz.all_regimes
    in
    List.for_all
      (fun r ->
        let failures = Check.Fuzz.run_multi_matrix ~jobs ~count r in
        let label =
          Printf.sprintf "fuzz-multi %s (%d workloads)"
            (Check.Fuzz.regime_to_string r) count
        in
        report label
          (match failures with
          | [] -> Ok ()
          | fs ->
            Error
              (List.concat_map
                 (fun f ->
                   Printf.sprintf "case %d:" f.Check.Fuzz.w_index
                   :: List.map (fun m -> "  " ^ m) f.Check.Fuzz.w_messages
                   @ [ "  workload: " ^ f.Check.Fuzz.w_workload; "  platform:" ]
                   @ List.map
                       (fun l -> "    " ^ l)
                       (String.split_on_char '\n'
                          (String.trim f.Check.Fuzz.w_platform)))
                 fs)))
      regimes
  in
  let check_fuzz_resolve jobs count regime =
    let regimes =
      match regime with Some r -> [ r ] | None -> Check.Fuzz.all_regimes
    in
    let ok =
      List.for_all
        (fun r ->
          let failures = Check.Fuzz.run_resolve_matrix ~jobs ~count r in
          let label =
            Printf.sprintf "fuzz-resolve %s (%d deltas)"
              (Check.Fuzz.regime_to_string r) count
          in
          report label
            (match failures with
            | [] -> Ok ()
            | fs ->
              Error
                (List.concat_map
                   (fun f ->
                     Printf.sprintf "case %d:" f.Check.Fuzz.r_index
                     :: List.map (fun m -> "  " ^ m) f.Check.Fuzz.r_messages
                     @ [ "  delta: " ^ f.Check.Fuzz.r_delta; "  platform:" ]
                     @ List.map
                         (fun l -> "    " ^ l)
                         (String.split_on_char '\n'
                            (String.trim f.Check.Fuzz.r_platform)))
                   fs)))
        regimes
    in
    Format.printf "resolve:@.%a@." Dls.Lp_model.pp_resolve_stats
      (Dls.Lp_model.resolve_stats ());
    ok
  in
  let check_platform platform =
    List.for_all
      (fun (label, sol) ->
        let schedule_ok =
          report (label ^ " schedule")
            (Check.Validator.errors_of_result platform
               (Check.Validator.validate_solved sol))
        in
        let certificate_ok =
          report (label ^ " LP certificate") (Check.Certificate.check sol)
        in
        schedule_ok && certificate_ok)
      [ ("fifo", Dls.Fifo.optimal platform); ("lifo", Dls.Lifo.optimal platform) ]
  in
  let run schedule trace eps fuzz fuzz_faults severity fuzz_multi fuzz_resolve
      regime platform jobs =
    let checks =
      List.concat
        [
          (match schedule with
          | Some path -> [ (fun () -> check_schedule path) ]
          | None -> []);
          (match trace with
          | Some path -> [ (fun () -> check_trace eps path) ]
          | None -> []);
          (match fuzz with
          | Some count -> [ (fun () -> check_fuzz jobs count regime) ]
          | None -> []);
          (match fuzz_faults with
          | Some count ->
            [ (fun () -> check_fuzz_faults jobs count severity regime) ]
          | None -> []);
          (match fuzz_multi with
          | Some count -> [ (fun () -> check_fuzz_multi jobs count regime) ]
          | None -> []);
          (match fuzz_resolve with
          | Some count -> [ (fun () -> check_fuzz_resolve jobs count regime) ]
          | None -> []);
          (match platform with
          | Some p -> [ (fun () -> check_platform p) ]
          | None -> []);
        ]
    in
    if checks = [] then begin
      prerr_endline
        "nothing to check: give --schedule, --trace, --fuzz, --fuzz-faults, \
         --fuzz-multi, --fuzz-resolve and/or --platform";
      exit 2
    end;
    (* Run every requested check before deciding the exit code. *)
    let ok = List.fold_left (fun acc f -> f () && acc) true checks in
    if not ok then exit 1
  in
  let doc =
    "validate schedules exactly: dumped schedules and traces, solver \
     self-checks, differential fuzzing of all solver paths"
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run $ schedule_arg $ trace_arg $ eps_arg $ fuzz_arg
      $ fuzz_faults_arg $ severity_arg $ fuzz_multi_arg $ fuzz_resolve_arg
      $ regime_arg $ platform_opt_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* lp-dump                                                             *)
(* ------------------------------------------------------------------ *)

let lp_dump_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let run platform discipline model out =
    let order =
      match discipline with
      | `Fifo -> Dls.Fifo.order platform
      | `Lifo -> Dls.Lifo.order platform
    in
    let scenario =
      match discipline with
      | `Fifo -> Dls.Scenario.fifo_exn platform order
      | `Lifo -> Dls.Scenario.lifo_exn platform order
    in
    let text = Simplex.Lp_file.to_string (Dls.Lp_model.problem model scenario) in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Format.printf "LP written to %s@." path
  in
  let doc = "dump the scheduling linear program in LP-file format" in
  Cmd.v
    (Cmd.info "lp-dump" ~doc)
    Term.(const run $ platform_arg $ discipline_arg $ model_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* serve / client / loadgen                                            *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Serve on the Unix-domain socket $(docv).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Serve on TCP $(docv) (0 picks a free port).")

let address_of socket host port =
  match (socket, port) with
  | Some path, None -> Ok (Service.Server.Unix_socket path)
  | None, Some p -> Ok (Service.Server.Tcp (host, p))
  | Some _, Some _ -> Error "give either --socket or --port, not both"
  | None, None -> Error "an address is required (--socket PATH or --port N)"

let address_to_string = function
  | Service.Server.Unix_socket path -> path
  | Service.Server.Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let serve_cmd =
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission-queue bound; beyond it requests get $(b,overloaded).")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 32
      & info [ "max-batch" ] ~docv:"N" ~doc:"Largest dispatcher round.")
  in
  let dispatchers_arg =
    Arg.(
      value & opt int 1
      & info [ "dispatchers" ] ~docv:"N"
          ~doc:
            "Dispatcher threads, each owning one admission shard (requests \
             are sharded by key hash, so duplicates stay on one shard; an \
             idle dispatcher steals from the longest backlog).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request budget (cooperative); overruns answer $(b,timeout).")
  in
  let no_dedup_arg =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Disable single-flight batching and the LP cache: every request \
             is evaluated independently (the bench baseline).")
  in
  let worker_delay_arg =
    Arg.(
      value & opt float 0.
      & info [ "worker-delay" ] ~docv:"SECONDS"
          ~doc:
            "Artificial per-request work, for overload and timeout \
             experiments.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Crash-safe response journal: every fresh response is appended to \
             $(docv) and replayed into a warm cache at boot, so a restarted \
             daemon answers repeat requests at admission time.")
  in
  let brownout_arg =
    Arg.(
      value & flag
      & info [ "brownout" ]
          ~doc:
            "Under sustained overload (three dispatch rounds above 3/4 queue \
             capacity), force every solve onto the certified fast pipeline \
             (bit-identical answers, lower worst-case latency) until three \
             rounds end at or below 1/4.")
  in
  let journal_max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "journal-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Journal byte budget (with $(b,--journal)): past it, the journal \
             is compacted down to the latest record of each key the warm \
             cache still holds (counted in the $(b,compactions) stat).")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Tier-2 shared solution store: on a warm-cache miss the daemon \
             consults $(docv) before solving ($(b,store_hits) / \
             $(b,store_misses) in the stats) and publishes every fresh \
             solution to it.  Many shards may share one store file.")
  in
  let stats_json_arg =
    Arg.(
      value & flag
      & info [ "stats-json" ]
          ~doc:
            "Print the final drain statistics as a JSON object (same fields \
             as the line format).")
  in
  let die fmt = Format.kasprintf (fun s -> prerr_endline ("dls: " ^ s); exit 1) fmt in
  let run socket host port jobs dispatchers queue_cap max_batch timeout
      no_dedup worker_delay journal journal_max_bytes store brownout stats_json =
    let address =
      match address_of socket host port with
      | Ok a -> a
      | Error msg -> die "%s" msg
    in
    let cfg =
      {
        (Service.Server.default_config address) with
        Service.Server.jobs;
        dispatchers;
        queue_capacity = queue_cap;
        max_batch;
        timeout;
        dedup = not no_dedup;
        worker_delay;
        journal;
        journal_max_bytes;
        store;
        brownout;
      }
    in
    match Service.Server.start cfg with
    | Error e -> die "%s" (Dls.Errors.to_string e)
    | Ok server ->
      let stop_flag = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
      Sys.set_signal Sys.sigterm on_signal;
      Sys.set_signal Sys.sigint on_signal;
      Printf.printf
        "dls: serving on %s (jobs=%d dispatchers=%d queue=%d batch=%d \
         dedup=%b)\n\
         %!"
        (address_to_string (Service.Server.address server))
        cfg.Service.Server.jobs cfg.Service.Server.dispatchers
        cfg.Service.Server.queue_capacity cfg.Service.Server.max_batch
        cfg.Service.Server.dedup;
      while not (Atomic.get stop_flag) do
        (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      prerr_endline "dls: draining";
      Service.Server.stop server;
      let final = Service.Server.stats server in
      if stats_json then print_endline (Service.Protocol.stats_to_json final)
      else
        print_endline
          (Service.Protocol.response_to_string
             (Service.Protocol.Ok_stats final))
  in
  let doc = "run the scheduling daemon (drains gracefully on SIGTERM)" in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ jobs_arg
      $ dispatchers_arg $ queue_cap_arg $ max_batch_arg $ timeout_arg
      $ no_dedup_arg $ worker_delay_arg $ journal_arg $ journal_max_bytes_arg
      $ store_arg $ brownout_arg $ stats_json_arg)

let client_cmd =
  let requests_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines (quote each one); with none, lines are read from \
             standard input.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transport failures, transit corruption and $(b,overloaded) \
             up to $(docv) times on fresh connections, with capped exponential \
             backoff and a circuit breaker (0 = the naive single-attempt \
             client).  Safe because a request's canonical line fully \
             determines its response.")
  in
  let attempt_timeout_arg =
    Arg.(
      value & opt float 0.25
      & info [ "attempt-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt deadline when retrying (with $(b,--retries)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Render $(b,stats) responses as a JSON object (same fields as \
             the line format); every other response keeps the line format.")
  in
  let run socket host port retries attempt_timeout json requests =
    let address =
      match address_of socket host port with
      | Ok a -> a
      | Error msg ->
        prerr_endline ("dls: " ^ msg);
        exit 2
    in
    let lines =
      match requests with
      | _ :: _ -> requests
      | [] ->
        let rec slurp acc =
          match input_line stdin with
          | line -> slurp (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        slurp []
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    let print_response resp =
      match resp with
      | Service.Protocol.Ok_stats s when json ->
        print_endline (Service.Protocol.stats_to_json s)
      | _ -> print_endline (Service.Protocol.response_to_string resp)
    in
    let outcome =
      if retries <= 0 then
        Service.Client.with_client address (fun client ->
            List.fold_left
              (fun all_ok line ->
                match Service.Client.request_raw client line with
                | Ok resp ->
                  print_response resp;
                  all_ok && Service.Protocol.is_ok resp
                | Error e ->
                  prerr_endline ("dls: " ^ Dls.Errors.to_string e);
                  false)
              true lines)
      else begin
        (* The retry loop is keyed on the canonical renderer, so lines
           are parsed locally first: a line that does not parse cannot
           be retried safely (or at all). *)
        let client =
          Service.Resilient.create
            {
              (Service.Resilient.default_config address) with
              Service.Resilient.attempts = retries + 1;
              attempt_timeout =
                (if attempt_timeout > 0. then Some attempt_timeout else None);
            }
        in
        let all_ok =
          List.fold_left
            (fun all_ok line ->
              match Service.Protocol.parse_request ~line:1 line with
              | Error e ->
                prerr_endline ("dls: " ^ Dls.Errors.to_string e);
                false
              | Ok req -> (
                match Service.Resilient.request client req with
                | Ok resp ->
                  print_response resp;
                  all_ok && Service.Protocol.is_ok resp
                | Error e ->
                  prerr_endline ("dls: " ^ Dls.Errors.to_string e);
                  false))
            true lines
        in
        Service.Resilient.close client;
        Ok all_ok
      end
    in
    match outcome with
    | Ok true -> ()
    | Ok false -> exit 1
    | Error e ->
      prerr_endline ("dls: " ^ Dls.Errors.to_string e);
      exit 2
  in
  let doc = "send request lines to a running daemon" in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ retries_arg
      $ attempt_timeout_arg $ json_arg $ requests_arg)

let loadgen_cmd =
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to send in total.")
  in
  let connections_arg =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Stream seed.")
  in
  let distinct_arg =
    Arg.(
      value & opt int 6
      & info [ "distinct" ] ~docv:"N"
          ~doc:
            "Distinct scenarios in the stream; small values are \
             duplicate-heavy and exercise single-flight batching.")
  in
  let multi_arg =
    Arg.(
      value & flag
      & info [ "multi" ]
          ~doc:
            "Mix $(b,solve-multi) requests into the stream (scenario slot 7; \
             the other slots are unchanged).")
  in
  let skew_arg =
    Arg.(
      value & opt float 0.
      & info [ "skew" ] ~docv:"S"
          ~doc:
            "Key-popularity skew: 0 draws scenarios uniformly (default); \
             $(docv) > 0 weights scenario rank r by (r+1)^-$(docv) \
             (Zipf-like hot head), still deterministic in the seed and \
             invariant under connection count.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the outcome to $(docv).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Use the resilient client (reconnect, backoff, circuit breaker) \
             with up to $(docv) retries per request; 0 keeps the naive \
             single-attempt client that reconnects but never retries.")
  in
  let attempt_timeout_arg =
    Arg.(
      value & opt float 0.25
      & info [ "attempt-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt deadline of the resilient client.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-request answer-by deadline: $(b,ok) responses landing later \
             count as throughput but not goodput.")
  in
  let rps_arg =
    Arg.(
      value & opt float 0.
      & info [ "rps" ] ~docv:"RATE"
          ~doc:
            "Open-loop mode: issue request $(i,i) at its seeded Poisson \
             arrival time at target rate $(docv) instead of as fast as the \
             connections allow, and report offered vs achieved rate plus the \
             worst scheduling lag.  0 keeps the classic closed loop.")
  in
  let processes_arg =
    Arg.(
      value & opt int 1
      & info [ "processes" ] ~docv:"N"
          ~doc:
            "Open-loop driving processes (with $(b,--rps)); the request \
             multiset and the arrival schedule are invariant in $(docv), \
             only the issue interleaving changes.")
  in
  let run socket host port requests connections seed distinct multi skew json
      retries attempt_timeout deadline rps processes =
    let address =
      match address_of socket host port with
      | Ok a -> a
      | Error msg ->
        prerr_endline ("dls: " ^ msg);
        exit 2
    in
    let resilient =
      if retries <= 0 then None
      else
        Some
          {
            (Service.Resilient.default_config address) with
            Service.Resilient.attempts = retries + 1;
            attempt_timeout =
              (if attempt_timeout > 0. then Some attempt_timeout else None);
            jitter_seed = seed;
          }
    in
    let print_outcome (o : Service.Loadgen.outcome) =
      Printf.printf
        "sent=%d ok=%d overloaded=%d timeouts=%d shed=%d failed=%d goodput=%d \
         retries=%d breaker_opens=%d p50=%.1fms p99=%.1fms wall=%.3fs \
         rps=%.1f\n"
        o.Service.Loadgen.sent o.Service.Loadgen.ok o.Service.Loadgen.overloaded
        o.Service.Loadgen.timeouts o.Service.Loadgen.shed
        o.Service.Loadgen.failed o.Service.Loadgen.goodput
        o.Service.Loadgen.retries o.Service.Loadgen.breaker_opens
        o.Service.Loadgen.p50_ms o.Service.Loadgen.p99_ms
        o.Service.Loadgen.wall_s o.Service.Loadgen.rps
    in
    let write_json path ?open_loop (o : Service.Loadgen.outcome) =
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"schema\": \"dls-loadgen/2\",\n\
        \  \"seed\": %d,\n\
        \  \"distinct\": %d,\n\
        \  \"skew\": %.3f,\n\
        \  \"connections\": %d,\n\
        \  \"retries\": %d,\n\
        \  \"sent\": %d,\n\
        \  \"ok\": %d,\n\
        \  \"overloaded\": %d,\n\
        \  \"timeouts\": %d,\n\
        \  \"shed\": %d,\n\
        \  \"failed\": %d,\n\
        \  \"goodput\": %d,\n\
        \  \"retried\": %d,\n\
        \  \"breaker_opens\": %d,\n\
        \  \"p50_ms\": %.3f,\n\
        \  \"p99_ms\": %.3f,\n\
        \  \"wall_s\": %.6f,\n\
        \  \"rps\": %.1f"
        seed distinct skew connections retries o.Service.Loadgen.sent
        o.Service.Loadgen.ok o.Service.Loadgen.overloaded
        o.Service.Loadgen.timeouts o.Service.Loadgen.shed
        o.Service.Loadgen.failed o.Service.Loadgen.goodput
        o.Service.Loadgen.retries o.Service.Loadgen.breaker_opens
        o.Service.Loadgen.p50_ms o.Service.Loadgen.p99_ms
        o.Service.Loadgen.wall_s o.Service.Loadgen.rps;
      (match open_loop with
      | None -> ()
      | Some oo ->
        Printf.fprintf oc
          ",\n\
          \  \"target_rps\": %.3f,\n\
          \  \"offered_rps\": %.3f,\n\
          \  \"max_lag_ms\": %.3f,\n\
          \  \"processes\": %d"
          oo.Service.Loadgen.target_rps oo.Service.Loadgen.offered_rps
          oo.Service.Loadgen.max_lag_ms oo.Service.Loadgen.processes);
      Printf.fprintf oc "\n}\n";
      close_out oc
    in
    if rps > 0. then begin
      match
        Service.Loadgen.run_open ~multi ~skew ?resilient ?deadline_s:deadline
          address ~processes ~requests ~rps ~seed ~distinct ()
      with
      | Error e ->
        prerr_endline ("dls: " ^ Dls.Errors.to_string e);
        exit 2
      | Ok oo ->
        let o = oo.Service.Loadgen.closed in
        print_outcome o;
        Printf.printf
          "open-loop: target=%.1frps offered=%.1frps achieved=%.1frps \
           max_lag=%.1fms processes=%d\n"
          oo.Service.Loadgen.target_rps oo.Service.Loadgen.offered_rps
          o.Service.Loadgen.rps oo.Service.Loadgen.max_lag_ms
          oo.Service.Loadgen.processes;
        Option.iter (fun path -> write_json path ~open_loop:oo o) json;
        if o.Service.Loadgen.failed > 0 then exit 1
    end
    else begin
      match
        Service.Loadgen.run ~multi ~skew ?resilient ?deadline_s:deadline
          address ~connections ~requests ~seed ~distinct ()
      with
      | Error e ->
        prerr_endline ("dls: " ^ Dls.Errors.to_string e);
        exit 2
      | Ok o ->
        print_outcome o;
        Option.iter (fun path -> write_json path o) json;
        if o.Service.Loadgen.failed > 0 then exit 1
    end
  in
  let doc = "replay the deterministic request stream against a daemon" in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ requests_arg
      $ connections_arg $ seed_arg $ distinct_arg $ multi_arg $ skew_arg
      $ json_arg $ retries_arg $ attempt_timeout_arg $ deadline_arg $ rps_arg
      $ processes_arg)

let route_cmd =
  let shard_arg =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"ADDR"
          ~doc:
            "Backend daemon shard (repeatable; at least one).  $(docv) is a \
             Unix-socket path when it contains a '/', $(b,HOST:PORT) when it \
             contains a ':', else a bare TCP port on 127.0.0.1.")
  in
  let vnodes_arg =
    Arg.(
      value & opt int 128
      & info [ "vnodes" ] ~docv:"N"
          ~doc:
            "Ring points per shard; more points, smoother key balance and \
             finer-grained remapping.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Resilient attempts per shard beyond the first; once a shard's \
             budget is spent the request fails over to the next shard on \
             the ring.")
  in
  let attempt_timeout_arg =
    Arg.(
      value & opt float 1.0
      & info [ "attempt-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-attempt deadline on backend requests; 0 disables.")
  in
  let die fmt =
    Format.kasprintf (fun s -> prerr_endline ("dls: " ^ s); exit 1) fmt
  in
  let parse_shard s =
    if String.contains s '/' then Service.Server.Unix_socket s
    else
      match String.rindex_opt s ':' with
      | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when host <> "" -> Service.Server.Tcp (host, p)
        | _ -> die "bad shard address %S (want PATH, HOST:PORT or PORT)" s)
      | None -> (
        match int_of_string_opt s with
        | Some p -> Service.Server.Tcp ("127.0.0.1", p)
        | None -> die "bad shard address %S (want PATH, HOST:PORT or PORT)" s)
  in
  let run socket host port shards vnodes retries attempt_timeout =
    let address =
      match address_of socket host port with
      | Ok a -> a
      | Error msg -> die "%s" msg
    in
    if shards = [] then
      die "at least one --shard is required (repeat it per backend)";
    let shard_addresses = List.map parse_shard shards in
    let cfg =
      {
        (Service.Router.default_config address ~shard_addresses) with
        Service.Router.vnodes;
        attempts = retries + 1;
        attempt_timeout =
          (if attempt_timeout > 0. then Some attempt_timeout else None);
      }
    in
    match Service.Router.start cfg with
    | Error e -> die "%s" (Dls.Errors.to_string e)
    | Ok router ->
      let stop_flag = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop_flag true) in
      Sys.set_signal Sys.sigterm on_signal;
      Sys.set_signal Sys.sigint on_signal;
      Printf.printf "dls: routing %s over %d shards (vnodes=%d)\n%!"
        (address_to_string (Service.Router.address router))
        (List.length shard_addresses)
        vnodes;
      while not (Atomic.get stop_flag) do
        (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      prerr_endline "dls: router draining";
      Service.Router.stop router;
      let s = Service.Router.stats router in
      Printf.printf
        "requests=%d routed=[%s] failovers=%d unavailable=%d local=%d \
         fanouts=%d hangups=%d\n"
        s.Service.Router.r_requests
        (String.concat ";"
           (Array.to_list
              (Array.map string_of_int s.Service.Router.r_routed)))
        s.Service.Router.r_failovers s.Service.Router.r_unavailable
        s.Service.Router.r_local s.Service.Router.r_fanouts
        s.Service.Router.r_hangups
  in
  let doc =
    "front a fleet of daemon shards with one consistent-hash endpoint"
  in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ shard_arg $ vnodes_arg
      $ retries_arg $ attempt_timeout_arg)

let chaos_cmd =
  let listen_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen-socket" ] ~docv:"PATH"
          ~doc:"Unix socket the proxy listens on.")
  in
  let listen_host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "listen-host" ] ~docv:"HOST" ~doc:"TCP listen host.")
  in
  let listen_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen-port" ] ~docv:"PORT"
          ~doc:"TCP listen port; 0 picks a free one.")
  in
  let upstream_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "upstream-socket" ] ~docv:"PATH"
          ~doc:"Unix socket of the upstream daemon.")
  in
  let upstream_host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "upstream-host" ] ~docv:"HOST" ~doc:"TCP upstream host.")
  in
  let upstream_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "upstream-port" ] ~docv:"PORT" ~doc:"TCP upstream port.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"FILE"
          ~doc:
            "Fault plan to inject (one $(b,conn C req R <fault>) per line); \
             without it a plan is drawn from $(b,--chaos-seed), \
             $(b,--conns) and $(b,--severity).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed of the generated plan (ignored with $(b,--plan)).")
  in
  let conns_arg =
    Arg.(
      value & opt int 64
      & info [ "conns" ] ~docv:"N"
          ~doc:"Connections covered by the generated plan.")
  in
  let severity_arg =
    Arg.(
      value & opt float 0.5
      & info [ "severity" ] ~docv:"S"
          ~doc:
            "Fraction in [0,1] of covered connections that get a fault \
             (every fourth connection always stays clean).")
  in
  let emit_plan_arg =
    Arg.(
      value & flag
      & info [ "emit-plan" ]
          ~doc:"Print the effective plan on standard output and exit.")
  in
  let die fmt =
    Format.kasprintf (fun s -> prerr_endline ("dls: " ^ s); exit 1) fmt
  in
  let run lsocket lhost lport usocket uhost uport plan_file seed conns severity
      emit_plan =
    let plan =
      match plan_file with
      | Some path ->
        let contents =
          try
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error msg -> die "%s" msg
        in
        (match Service.Chaos.of_string contents with
        | Ok plan -> plan
        | Error e -> die "%s: %s" path (Dls.Errors.to_string e))
      | None -> Service.Chaos.gen ~seed ~conns ~severity
    in
    if emit_plan then print_string (Service.Chaos.to_string plan)
    else begin
      let listen =
        match (lsocket, lport) with
        | None, None ->
          (* No listen address given: default to a free TCP port. *)
          Service.Server.Tcp (lhost, 0)
        | _ -> (
          match address_of lsocket lhost lport with
          | Ok a -> a
          | Error msg -> die "chaos listen: %s" msg)
      in
      let upstream =
        match address_of usocket uhost uport with
        | Ok a -> a
        | Error _ ->
          die
            "chaos: an upstream is required (--upstream-socket PATH or \
             --upstream-port N)"
      in
      match Service.Chaos.start ~listen ~upstream plan with
      | Error e -> die "%s" (Dls.Errors.to_string e)
      | Ok proxy ->
        let stop_flag = Atomic.make false in
        let on_signal =
          Sys.Signal_handle (fun _ -> Atomic.set stop_flag true)
        in
        Sys.set_signal Sys.sigterm on_signal;
        Sys.set_signal Sys.sigint on_signal;
        Printf.printf "dls: chaos proxy %s -> %s (%d planned faults)\n%!"
          (address_to_string (Service.Chaos.address proxy))
          (address_to_string upstream)
          (List.length plan);
        while not (Atomic.get stop_flag) do
          (try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
        done;
        prerr_endline "dls: chaos proxy stopping";
        Service.Chaos.stop proxy
    end
  in
  let doc =
    "run the deterministic fault-injecting proxy in front of a daemon"
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(
      const run $ listen_socket_arg $ listen_host_arg $ listen_port_arg
      $ upstream_socket_arg $ upstream_host_arg $ upstream_port_arg $ plan_arg
      $ seed_arg $ conns_arg $ severity_arg $ emit_plan_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "divisible-load scheduling with return messages under the one-port model"
  in
  let info = Cmd.info "dls" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            solve_multi_cmd;
            bus_cmd;
            gantt_cmd;
            simulate_cmd;
            brute_cmd;
            search_cmd;
            multiround_cmd;
            tree_cmd;
            affine_cmd;
            sensitivity_cmd;
            faults_cmd;
            check_cmd;
            lp_dump_cmd;
            experiment_cmd;
            platform_cmd;
            serve_cmd;
            client_cmd;
            loadgen_cmd;
            route_cmd;
            chaos_cmd;
          ]))
